import pytest

from repro.errors import GeometryError
from repro.geometry import Point, Polygon, Rect, Transform, signed_area2


SQUARE = Polygon.from_rect_coords(0, 0, 10, 10)
L_SHAPE = Polygon([(0, 0), (0, 30), (10, 30), (10, 10), (25, 10), (25, 0)])


class TestConstruction:
    def test_normalizes_to_clockwise(self):
        ccw = [(0, 0), (10, 0), (10, 10), (0, 10)]
        cw = [(0, 0), (0, 10), (10, 10), (10, 0)]
        assert signed_area2(Polygon(ccw).vertices) < 0
        assert Polygon(ccw) == Polygon(cw)

    def test_tolerates_closed_ring(self):
        ring = [(0, 0), (0, 10), (10, 10), (10, 0), (0, 0)]
        assert Polygon(ring).num_vertices == 4

    def test_merges_collinear_vertices(self):
        verts = [(0, 0), (0, 5), (0, 10), (10, 10), (10, 0)]
        assert Polygon(verts).num_vertices == 4

    def test_rejects_too_few_vertices(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (0, 10), (10, 10)])

    def test_rejects_non_rectilinear(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (0, 10), (10, 11), (10, 0)])

    def test_rejects_repeated_vertices(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (0, 10), (0, 10), (10, 10), (10, 0)])

    def test_rejects_zero_area(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (0, 10), (0, 20), (0, 10)])

    def test_rejects_spike(self):
        # Doubling-back collinear run is not a simple rectilinear polygon.
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (0, 20), (0, 10), (10, 10), (10, 0)])

    def test_from_rect_degenerate_raises(self):
        with pytest.raises(GeometryError):
            Polygon.from_rect_coords(0, 0, 0, 10)


class TestProperties:
    def test_square_area(self):
        assert SQUARE.area == 100

    def test_l_shape_area_by_shoelace(self):
        # 10x30 bar + 15x10 foot
        assert L_SHAPE.area == 300 + 150

    def test_perimeter(self):
        assert SQUARE.perimeter == 40

    def test_mbr(self):
        assert L_SHAPE.mbr == Rect(0, 0, 25, 30)

    def test_is_rectangle(self):
        assert SQUARE.is_rectangle
        assert not L_SHAPE.is_rectangle

    def test_is_rectilinear(self):
        assert L_SHAPE.is_rectilinear

    def test_edges_alternate_orientation(self):
        orientations = [e.is_horizontal for e in L_SHAPE.edges()]
        for a, b in zip(orientations, orientations[1:]):
            assert a != b

    def test_edges_interior_right_of_travel(self):
        # For the unit square, each edge's interior normal points inward.
        for e in SQUARE.edges():
            nx, ny = e.interior_side
            mid_x = (e.start.x + e.end.x) // 2 + nx
            mid_y = (e.start.y + e.end.y) // 2 + ny
            assert SQUARE.contains_point(Point(mid_x, mid_y))


class TestContainsPoint:
    def test_interior(self):
        assert L_SHAPE.contains_point(Point(5, 5))

    def test_exterior(self):
        assert not L_SHAPE.contains_point(Point(20, 20))

    def test_notch_exterior(self):
        assert not L_SHAPE.contains_point(Point(15, 15))

    def test_boundary_included_by_default(self):
        assert L_SHAPE.contains_point(Point(0, 5))
        assert L_SHAPE.contains_point(Point(25, 0))

    def test_boundary_excluded_on_request(self):
        assert not L_SHAPE.contains_point(Point(0, 5), include_boundary=False)

    def test_vertex(self):
        assert L_SHAPE.contains_point(Point(10, 10))


class TestTransformed:
    def test_translation(self):
        moved = SQUARE.transformed(Transform(dx=5, dy=7))
        assert moved.mbr == Rect(5, 7, 15, 17)

    def test_rotation_90(self):
        tall = Polygon.from_rect_coords(0, 0, 2, 10)
        rotated = tall.transformed(Transform(rotation=90))
        assert rotated.mbr == Rect(-10, 0, 0, 2)

    def test_mirror_keeps_clockwise_order(self):
        mirrored = L_SHAPE.transformed(Transform(mirror_x=True))
        assert signed_area2(mirrored.vertices) < 0
        assert mirrored.area == L_SHAPE.area

    def test_area_preserved_under_rigid_transforms(self):
        t = Transform(dx=3, dy=-9, rotation=270, mirror_x=True)
        assert L_SHAPE.transformed(t).area == L_SHAPE.area

    def test_magnification_scales_area(self):
        big = SQUARE.transformed(Transform(magnification=3))
        assert big.area == 900


class TestValueSemantics:
    def test_equality_ignores_vertex_rotation(self):
        a = Polygon([(0, 0), (0, 10), (10, 10), (10, 0)])
        b = Polygon([(10, 10), (10, 0), (0, 0), (0, 10)])
        assert a == b and hash(a) == hash(b)

    def test_inequality(self):
        assert SQUARE != Polygon.from_rect_coords(0, 0, 10, 11)

    def test_name_does_not_affect_equality(self):
        named = Polygon.from_rect_coords(0, 0, 10, 10, name="pad")
        assert named == SQUARE
        assert named.name == "pad"
