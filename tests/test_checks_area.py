from repro.checks import ViolationKind, check_area, check_polygon_area
from repro.geometry import Polygon


class TestArea:
    def test_small_polygon_flagged(self):
        tiny = Polygon.from_rect_coords(0, 0, 10, 10)
        violations = check_polygon_area(tiny, 1, 200)
        assert len(violations) == 1
        v = violations[0]
        assert v.kind is ViolationKind.AREA
        assert v.measured == 100 and v.required == 200
        assert v.region == tiny.mbr

    def test_exact_area_passes(self):
        tiny = Polygon.from_rect_coords(0, 0, 10, 10)
        assert check_polygon_area(tiny, 1, 100) == []

    def test_l_shape_uses_true_area_not_mbr(self):
        # MBR area is 750 but the polygon covers 450.
        l_shape = Polygon([(0, 0), (0, 30), (10, 30), (10, 10), (25, 10), (25, 0)])
        assert l_shape.mbr.area == 750
        violations = check_polygon_area(l_shape, 1, 500)
        assert len(violations) == 1 and violations[0].measured == 450

    def test_collection(self):
        polys = [
            Polygon.from_rect_coords(0, 0, 5, 5),
            Polygon.from_rect_coords(0, 0, 100, 100),
        ]
        violations = check_area(polys, 3, 1000)
        assert len(violations) == 1 and violations[0].measured == 25
