"""Fused segmented-row execution: equivalence, pack cache, engine knobs.

The tentpole property: for every rule kind that rides the row partition,
the fused dispatch (one segmented launch per orientation per rule), the
per-row ablation baseline, and the sequential checker must report the same
violation multiset — on randomized hierarchical layouts and on the
workload designs.
"""

import random
from collections import Counter

import pytest

from repro.core import Engine, EngineOptions
from repro.core.rules import layer
from repro.geometry import Polygon
from repro.gpu import Device
from repro.layout import Layout
from repro.workloads import asap7, random_hierarchical_layout


def random_via_layout(seed: int, *, kinds: int = 3, instances: int = 30) -> Layout:
    """Random hierarchical metal (layer 1) + via (layer 2) layout.

    Vias sit inside their metal with a random margin, so some violate a
    modest enclosure rule and some do not.
    """
    from repro.layout import CellReference
    from repro.geometry import Transform

    rng = random.Random(seed)
    layout = Layout(f"vias-{seed}")
    for kind in range(kinds):
        leaf = layout.new_cell(f"leaf_{kind}")
        for _ in range(rng.randint(1, 4)):
            x, y = rng.randint(0, 120), rng.randint(0, 120)
            w, h = rng.randint(14, 36), rng.randint(14, 36)
            leaf.add_polygon(1, Polygon.from_rect_coords(x, y, x + w, y + h))
            margin = rng.randint(0, 5)
            leaf.add_polygon(
                2,
                Polygon.from_rect_coords(
                    x + margin, y + margin, x + margin + 4, y + margin + 4
                ),
            )
    top = layout.new_cell("top")
    for _ in range(instances):
        top.add_reference(
            CellReference(
                f"leaf_{rng.randrange(kinds)}",
                Transform(
                    dx=rng.randint(0, 4000),
                    dy=rng.randint(0, 4000),
                    rotation=rng.choice((0, 90, 180, 270)),
                    mirror_x=rng.random() < 0.5,
                ),
            )
        )
    layout.set_top("top")
    return layout


def multisets(layout, rule):
    out = {}
    for name, engine in (
        ("fused", Engine(options=EngineOptions(mode="parallel", fuse_rows=True))),
        ("per-row", Engine(options=EngineOptions(mode="parallel", fuse_rows=False))),
        ("sequential", Engine(mode="sequential")),
    ):
        report = engine.check(layout, rules=[rule])
        out[name] = Counter(report.results[0].violations)
    return out


def assert_equivalent(layout, rule):
    results = multisets(layout, rule)
    reference = results["sequential"]
    for name, got in results.items():
        assert got == reference, (
            f"{name} disagrees on {rule.name}: "
            f"extra={got - reference}, missing={reference - got}"
        )


class TestFusedEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_spacing_random_hierarchical(self, seed):
        layout = random_hierarchical_layout(instances=40, seed=seed)
        assert_equivalent(layout, layer(1).spacing().greater_than(7))

    @pytest.mark.parametrize("seed", range(3))
    def test_width_random_hierarchical(self, seed):
        layout = random_hierarchical_layout(instances=30, seed=30 + seed)
        assert_equivalent(layout, layer(1).width().greater_than(8))

    @pytest.mark.parametrize("seed", range(3))
    def test_corner_random_hierarchical(self, seed):
        layout = random_hierarchical_layout(instances=30, seed=60 + seed)
        assert_equivalent(layout, layer(1).corner_spacing().greater_than(6))

    @pytest.mark.parametrize("seed", range(3))
    def test_enclosure_random_hierarchical(self, seed):
        layout = random_via_layout(90 + seed)
        assert_equivalent(layout, layer(2).enclosure(layer(1)).greater_than(3))

    def test_full_deck_uart(self, uart_layout):
        fused = Engine(options=EngineOptions(mode="parallel", fuse_rows=True))
        per_row = Engine(options=EngineOptions(mode="parallel", fuse_rows=False))
        deck = asap7.full_deck()
        a = fused.check(uart_layout, rules=deck)
        b = per_row.check(uart_layout, rules=deck)
        for ra, rb in zip(a.results, b.results):
            assert Counter(ra.violations) == Counter(rb.violations), ra.rule.name

    def test_rows_off_fused_still_agrees(self, uart_layout):
        rule = asap7.spacing_rule(asap7.M3)
        off = Engine(
            options=EngineOptions(mode="parallel", use_rows=False, fuse_rows=True)
        ).check(uart_layout, rules=[rule])
        seq = Engine(mode="sequential").check(uart_layout, rules=[rule])
        assert off.results[0].violation_set() == seq.results[0].violation_set()


class TestLaunchReduction:
    def test_fused_strictly_fewer_launches_and_copies(self, uart_layout):
        deck = asap7.spacing_deck() + asap7.enclosure_deck()
        counters = {}
        for fuse in (True, False):
            device = Device()
            engine = Engine(
                device=device,
                options=EngineOptions(mode="parallel", fuse_rows=fuse),
            )
            engine.check(uart_layout, rules=deck)
            counters[fuse] = device.counters()
        assert counters[True]["kernel_launches"] < counters[False]["kernel_launches"]
        assert counters[True]["h2d_copies"] < counters[False]["h2d_copies"]

    def test_fusion_stats_counted(self, uart_layout):
        engine = Engine(mode="parallel")
        engine.check(uart_layout, rules=[asap7.spacing_rule(asap7.M3)])
        stats = engine.last_checker.fusion_stats
        assert stats["fused_launches"] > 0
        assert stats["fused_segments"] >= stats["fused_launches"]


class TestPackCache:
    def test_hits_across_rules_sharing_a_layer(self, uart_layout):
        engine = Engine(mode="parallel")
        deck = [
            asap7.spacing_rule(asap7.M2),
            asap7.width_rule(asap7.M2),
            asap7.area_rule(asap7.M2),
            asap7.enclosure_rule(asap7.V2, asap7.M2),
        ]
        engine.check(uart_layout, rules=deck)
        cache = engine.last_checker.pack_cache
        assert cache.hits > 0
        assert cache.misses > 0

    def test_single_rule_deck_has_no_hits(self, uart_layout):
        engine = Engine(mode="parallel")
        engine.check(uart_layout, rules=[asap7.spacing_rule(asap7.M1)])
        assert engine.last_checker.pack_cache.hits == 0

    def test_distance_change_reuses_level_items_only(self):
        # Two spacing rules whose margins differ partition the layer
        # differently; cached row buffers must not leak between them.
        layout = random_hierarchical_layout(instances=40, seed=7)
        near = layer(1).spacing().greater_than(5)
        far = layer(1).spacing().greater_than(600)
        par = Engine(mode="parallel").check(layout, rules=[near, far])
        seq = Engine(mode="sequential").check(layout, rules=[near, far])
        for a, b in zip(par.results, seq.results):
            assert Counter(a.violations) == Counter(b.violations), a.rule.name

    def test_stats_expose_cache_and_device_counters(self, uart_layout):
        engine = Engine(mode="parallel")
        report = engine.check(
            uart_layout,
            rules=[asap7.spacing_rule(asap7.M2), asap7.spacing_rule(asap7.M3)],
        )
        stats = report.results[-1].stats
        assert stats["kernel_launches"] > 0
        assert stats["h2d_copies"] > 0
        assert stats["fused_launches"] > 0
        assert stats["pack_cache_misses"] > 0
        assert "pack_cache_hits" in stats


class TestEngineInit:
    def test_conflicting_modes_raise(self):
        with pytest.raises(ValueError, match="conflicting modes"):
            Engine(mode="sequential", options=EngineOptions(mode="parallel"))

    def test_matching_modes_accepted(self):
        engine = Engine(mode="parallel", options=EngineOptions(mode="parallel"))
        assert engine.options.mode == "parallel"

    def test_mode_alone(self):
        assert Engine(mode="parallel").options.mode == "parallel"
        assert Engine().options.mode == "sequential"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            Engine(mode="warp-drive")
