import pytest

from repro.core import Engine, EngineOptions
from repro.core.rules import layer
from repro.geometry import Polygon, Transform
from repro.gpu import Device, OpKind
from repro.layout import CellReference, Layout
from repro.workloads import asap7


def make_engines():
    return Engine(mode="sequential"), Engine(mode="parallel")


def rotated_layout() -> Layout:
    """Instances under every rigid transform; par and seq must agree."""
    layout = Layout("rot")
    cellule = layout.new_cell("cellule")
    cellule.add_polygon(1, Polygon.from_rect_coords(0, 0, 8, 60))
    cellule.add_polygon(1, Polygon.from_rect_coords(12, 0, 20, 60))  # gap 4
    top = layout.new_cell("top")
    spot = 0
    for rotation in (0, 90, 180, 270):
        for mirror in (False, True):
            top.add_reference(
                CellReference(
                    "cellule",
                    Transform(dx=spot * 500, dy=0, rotation=rotation, mirror_x=mirror),
                )
            )
            spot += 1
    layout.set_top("top")
    return layout


class TestParallelAgreesWithSequential:
    @pytest.mark.parametrize(
        "rule_factory",
        [
            lambda: layer(1).spacing().greater_than(6),
            lambda: layer(1).width().greater_than(10),
            lambda: layer(1).area().greater_than(1000),
        ],
        ids=["spacing", "width", "area"],
    )
    def test_rotated_instances(self, rule_factory):
        layout = rotated_layout()
        seq, par = make_engines()
        rs = seq.check(layout, rules=[rule_factory()])
        rp = par.check(layout, rules=[rule_factory()])
        assert rs.results[0].violation_set() == rp.results[0].violation_set()
        assert rs.results[0].num_violations > 0

    def test_designs_full_deck(self, uart_layout):
        deck = asap7.full_deck()
        seq, par = make_engines()
        seq.add_rules(deck)
        par.add_rules(deck)
        rs = seq.check(uart_layout)
        rp = par.check(uart_layout)
        for a, b in zip(rs.results, rp.results):
            assert a.violation_set() == b.violation_set(), a.rule.name


class TestExecutorSelection:
    def test_small_tasks_use_bruteforce(self, uart_layout):
        par = Engine(
            options=EngineOptions(mode="parallel", brute_force_threshold=10 ** 9)
        )
        par.check(uart_layout, rules=[asap7.spacing_rule(asap7.M1)])
        stats = par.last_checker.executor_counts
        assert stats["bruteforce"] > 0 and stats["sweepline"] == 0

    def test_large_tasks_use_sweepline(self, uart_layout):
        par = Engine(options=EngineOptions(mode="parallel", brute_force_threshold=0))
        par.check(uart_layout, rules=[asap7.spacing_rule(asap7.M1)])
        stats = par.last_checker.executor_counts
        assert stats["sweepline"] > 0 and stats["bruteforce"] == 0

    def test_both_executors_same_violations(self, ibex_layout):
        rule = asap7.spacing_rule(asap7.M2)
        brute = Engine(options=EngineOptions(mode="parallel", brute_force_threshold=10 ** 9))
        sweep = Engine(options=EngineOptions(mode="parallel", brute_force_threshold=0))
        a = brute.check(ibex_layout, rules=[rule])
        b = sweep.check(ibex_layout, rules=[rule])
        assert a.results[0].violation_set() == b.results[0].violation_set()


class TestDeviceIntegration:
    def test_ops_recorded_on_device(self, uart_layout):
        device = Device("test-gpu")
        par = Engine(mode="parallel", device=device)
        par.check(uart_layout, rules=[asap7.spacing_rule(asap7.M1)])
        kinds = {op.kind for op in device.ops}
        assert OpKind.H2D in kinds and OpKind.KERNEL in kinds and OpKind.HOST in kinds

    def test_streams_round_robin(self, uart_layout):
        device = Device()
        par = Engine(
            mode="parallel",
            device=device,
            options=EngineOptions(mode="parallel", num_streams=2),
        )
        par.check(uart_layout, rules=[asap7.spacing_rule(asap7.M3)])
        streams = {op.stream for op in device.ops if op.stream is not None}
        assert streams == {0, 1}  # M3 rows spread over both streams

    def test_timeline_summary_nonzero(self, uart_layout):
        device = Device()
        par = Engine(mode="parallel", device=device)
        par.check(uart_layout, rules=[asap7.spacing_rule(asap7.M1)])
        summary = device.timeline().summarize()
        assert summary.serial_seconds > 0
        assert summary.async_seconds <= summary.serial_seconds


class TestRowsOff:
    def test_use_rows_false_same_results(self, uart_layout):
        rule = asap7.spacing_rule(asap7.M3)
        on = Engine(mode="parallel").check(uart_layout, rules=[rule])
        off = Engine(options=EngineOptions(mode="parallel", use_rows=False)).check(
            uart_layout, rules=[rule]
        )
        assert on.results[0].violation_set() == off.results[0].violation_set()
