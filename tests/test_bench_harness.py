"""Smoke tests for the benchmark harness itself (on the smallest design)."""

from benchmarks import tables
from benchmarks.common import TABLE_COLUMNS, design, verify_agreement
from repro.workloads import asap7


class TestTableGenerators:
    def test_table1_structure(self):
        text = tables.table1_intra(designs=("uart",))
        lines = text.splitlines()
        assert "Table I" in lines[0]
        assert "ODRC-par" in lines[1]
        # title + header + separator + 6 intra rules + average
        assert len(lines) == 4 + 6
        assert lines[-1].startswith("average")
        assert "100.0%" in lines[-1]

    def test_table2_spacing_structure(self):
        text = tables.table2_spacing(designs=("uart",))
        assert text.count("M1.S.1") == 1
        assert "average" in text

    def test_table2_enclosure_structure(self):
        text = tables.table2_enclosure(designs=("uart",))
        assert "V1.M1.EN.1" in text and "average" in text

    def test_xcheck_area_column_empty(self):
        text = tables.table1_intra(designs=("uart",))
        area_rows = [ln for ln in text.splitlines() if ".A.1" in ln]
        assert area_rows and all(" - " in row or row.rstrip().count(" -") for row in area_rows)

    def test_fig4_breakdown_structure(self):
        text = tables.fig4_breakdown(designs=("uart",))
        assert "[uart]" in text
        assert "partition" in text and "sweepline" in text and "edge-checks" in text


class TestHarnessInfra:
    def test_design_cache(self):
        assert design("uart") is design("uart")

    def test_columns_in_paper_order(self):
        names = [name for name, _ in TABLE_COLUMNS]
        assert names == ["KL-flat", "KL-deep", "KL-tile", "X-Check", "ODRC-seq", "ODRC-par"]

    def test_verify_agreement_counts(self):
        count = verify_agreement(design("uart"), asap7.spacing_rule(asap7.M2))
        assert count == 0  # benchmark designs are clean

    def test_xcheck_column_returns_none_for_area(self):
        from benchmarks.common import run_xcheck

        assert run_xcheck(design("uart"), asap7.area_rule(asap7.M1)) is None
