from fractions import Fraction

import pytest

from repro.errors import GeometryError
from repro.geometry import IDENTITY, Point, Rect, Transform
from repro.hierarchy import invert


class TestApply:
    def test_identity(self):
        assert IDENTITY.apply(Point(3, 4)) == Point(3, 4)

    def test_translation(self):
        assert Transform(dx=10, dy=-2).apply(Point(1, 1)) == Point(11, -1)

    def test_rotation_90_ccw(self):
        assert Transform(rotation=90).apply(Point(1, 0)) == Point(0, 1)

    def test_rotation_180(self):
        assert Transform(rotation=180).apply(Point(3, 4)) == Point(-3, -4)

    def test_rotation_270(self):
        assert Transform(rotation=270).apply(Point(1, 0)) == Point(0, -1)

    def test_mirror_before_rotation(self):
        # GDSII order: reflect about x first, then rotate.
        t = Transform(rotation=90, mirror_x=True)
        assert t.apply(Point(0, 1)) == Point(1, 0)

    def test_magnification(self):
        assert Transform(magnification=3).apply(Point(2, 5)) == Point(6, 15)

    def test_fractional_magnification_off_grid_raises(self):
        t = Transform(magnification=Fraction(1, 2))
        with pytest.raises(GeometryError):
            t.apply(Point(3, 0))

    def test_fractional_magnification_on_grid(self):
        t = Transform(magnification=Fraction(1, 2))
        assert t.apply(Point(4, 8)) == Point(2, 4)

    def test_invalid_rotation_rejected(self):
        with pytest.raises(GeometryError):
            Transform(rotation=45).apply(Point(1, 1))

    def test_non_positive_magnification_rejected(self):
        with pytest.raises(GeometryError):
            Transform(magnification=0).apply(Point(1, 1))


class TestApplyRect:
    def test_rotation_rebuilds_corners(self):
        r = Transform(rotation=90).apply_rect(Rect(0, 0, 4, 2))
        assert r == Rect(-2, 0, 0, 4)

    def test_empty_rect_stays_empty(self):
        from repro.geometry import EMPTY_RECT

        assert Transform(dx=5).apply_rect(EMPTY_RECT).is_empty


class TestCompose:
    @pytest.mark.parametrize("rotation", [0, 90, 180, 270])
    @pytest.mark.parametrize("mirror", [False, True])
    def test_compose_matches_sequential_application(self, rotation, mirror):
        outer = Transform(dx=7, dy=-3, rotation=rotation, mirror_x=mirror)
        inner = Transform(dx=2, dy=5, rotation=90, mirror_x=True)
        composed = outer.compose(inner)
        for p in (Point(0, 0), Point(3, 1), Point(-4, 9)):
            assert composed.apply(p) == outer.apply(inner.apply(p))

    def test_compose_magnifications_multiply(self):
        outer = Transform(magnification=2)
        inner = Transform(magnification=3)
        assert outer.compose(inner).magnification == 6


class TestInvert:
    @pytest.mark.parametrize("rotation", [0, 90, 180, 270])
    @pytest.mark.parametrize("mirror", [False, True])
    def test_inverse_roundtrip(self, rotation, mirror):
        t = Transform(dx=11, dy=-7, rotation=rotation, mirror_x=mirror)
        inverse = invert(t)
        for p in (Point(0, 0), Point(5, 3), Point(-2, 8)):
            assert inverse.apply(t.apply(p)) == p
            assert t.apply(inverse.apply(p)) == p


class TestInvariants:
    def test_rigid_transform_preserves_distances(self):
        assert Transform(dx=5, rotation=90, mirror_x=True).preserves_distances

    def test_magnification_breaks_distances(self):
        assert not Transform(magnification=2).preserves_distances

    def test_area_scale(self):
        assert Transform(magnification=3).area_scale == 9
        assert Transform(rotation=90).area_scale == 1

    def test_repr_mentions_components(self):
        text = repr(Transform(dx=1, dy=2, rotation=90, mirror_x=True))
        assert "rot=90" in text and "mirror" in text
