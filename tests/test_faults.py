"""Fault injection and multiprocess recovery: the check always completes.

The contract under test: whatever faults fire — workers raising, hanging,
or dying, shared-memory attaches failing, pack-store entries rotting on
disk — every check completes and the report is byte-identical to the
fault-free run; only the ``mp_retries`` / ``mp_timeouts`` /
``mp_inline_fallbacks`` / ``mp_degraded`` / ``cache_corrupt`` counters
reveal that recovery happened.
"""

import os

import numpy as np
import pytest

from repro.core import Engine, EngineOptions, compile_plan, make_backend
from repro.core.results import CheckResult
from repro.core.rules import layer
from repro.util import faults
from repro.util.faults import FaultPlan, FaultSpecError, InjectedFault

from .test_multiproc import every_kind_deck, random_via_layout


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    """No fault plan leaks into or out of any test in this module."""
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.clear()
    yield
    faults.clear()


def small_deck():
    """One plain rule task plus both row-sharded shapes (pair + enclosure)."""
    return [
        layer(1).width().greater_than(8).named("W"),
        layer(1).spacing().greater_than(7).named("S"),
        layer(2).enclosure(layer(1)).greater_than(3).named("ENC"),
    ]


def run(layout, rules, *, jobs, **kw):
    options = EngineOptions(mode="multiproc", jobs=jobs, **kw)
    return Engine(options=options).check(layout, rules=rules)


# ---------------------------------------------------------------------------
# Spec parsing and the plan mechanics (no processes involved)
# ---------------------------------------------------------------------------


class TestFaultSpec:
    def test_empty_specs_mean_no_faults(self):
        assert FaultPlan.parse(None) is None
        assert FaultPlan.parse("") is None
        assert FaultPlan.parse(" ; ") is None

    def test_single_site_defaults_to_one_shot(self):
        plan = FaultPlan.parse("worker_raise")
        assert [d.site for d in plan.directives] == ["worker_raise"]
        assert plan.directives[0].times == 1

    def test_multi_clause_spec_with_parameters(self):
        plan = FaultPlan.parse(
            "worker_hang:rule=M3.S,times=2,skip=1;packstore_corrupt:times=3"
        )
        hang, corrupt = plan.directives
        assert (hang.site, hang.rule, hang.times, hang.skip) == (
            "worker_hang", "M3.S", 2, 1
        )
        assert (corrupt.site, corrupt.times) == ("packstore_corrupt", 3)

    @pytest.mark.parametrize(
        "spec",
        [
            "explode",                      # unknown site
            "worker_raise:count=1",         # unknown parameter
            "worker_raise:times",           # missing value
            "worker_raise:times=soon",      # non-integer value
            "shm_attach_fail:p=1.5",        # probability out of range
        ],
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(spec)

    def test_spec_error_is_a_value_error(self):
        assert issubclass(FaultSpecError, ValueError)

    def test_times_budget_bounds_firing(self):
        plan = FaultPlan.parse("worker_raise:times=2")
        fired = [plan.should_fire(faults.WORKER_RAISE) for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_skip_lets_early_opportunities_pass(self):
        plan = FaultPlan.parse("worker_raise:skip=2,times=1")
        fired = [plan.should_fire(faults.WORKER_RAISE) for _ in range(4)]
        assert fired == [False, False, True, False]

    def test_rule_filter_only_matches_that_rule(self):
        plan = FaultPlan.parse("worker_hang:rule=S")
        assert not plan.should_fire(faults.WORKER_HANG, "W")
        assert plan.should_fire(faults.WORKER_HANG, "S")
        assert plan.worker_fault("S") is None  # budget consumed
        assert plan.worker_fault("W") is None

    def test_worker_fault_maps_site_to_action(self):
        assert FaultPlan.parse("worker_raise").worker_fault("X") == "raise"
        assert FaultPlan.parse("worker_hang").worker_fault("X") == "hang"
        assert FaultPlan.parse("worker_die").worker_fault("X") == "die"

    def test_probability_draws_are_seeded_and_repeatable(self):
        spec = "worker_raise:p=0.5,seed=7,times=100"

        def draws():
            directive = FaultPlan.parse(spec).directives[0]
            return [directive.consult(None) for _ in range(64)]

        first, second = draws(), draws()
        assert first == second
        assert any(first) and not all(first)

    def test_sites_are_independent(self):
        plan = FaultPlan.parse("worker_raise;packstore_corrupt")
        assert plan.should_fire(faults.PACKSTORE_CORRUPT)
        assert plan.should_fire(faults.WORKER_RAISE)
        assert not plan.should_fire(faults.SHM_ATTACH_FAIL)


class TestInstallation:
    def test_install_is_idempotent_by_spec(self):
        faults.install("worker_raise:times=1")
        assert faults.should_fire(faults.WORKER_RAISE)
        # Re-installing the same spec must keep the consumed budget (a
        # worker re-resolving its options must not re-arm fired faults).
        plan = faults.install("worker_raise:times=1")
        assert plan is faults.active()
        assert not faults.should_fire(faults.WORKER_RAISE)

    def test_install_token_scopes_idempotence_to_one_check(self):
        faults.install("worker_raise:times=1", token=1)
        assert faults.should_fire(faults.WORKER_RAISE)
        assert not faults.should_fire(faults.WORKER_RAISE)
        # Same spec + same token (a retry within the check): budget stays
        # consumed.
        faults.install("worker_raise:times=1", token=1)
        assert not faults.should_fire(faults.WORKER_RAISE)
        # A tokenless re-install (e.g. compile_plan re-resolving options)
        # never invalidates the live plan either.
        faults.install("worker_raise:times=1")
        assert not faults.should_fire(faults.WORKER_RAISE)
        # A new token — the next check's epoch on a warm pool — re-arms
        # the budget from scratch, matching cold-path fresh workers.
        faults.install("worker_raise:times=1", token=2)
        assert faults.should_fire(faults.WORKER_RAISE)

    def test_installing_a_new_spec_replaces_the_plan(self):
        faults.install("worker_raise:times=1")
        faults.install("worker_hang:times=1")
        assert not faults.should_fire(faults.WORKER_RAISE)
        assert faults.should_fire(faults.WORKER_HANG)

    def test_install_none_clears(self):
        faults.install("worker_raise")
        faults.install(None)
        assert faults.active() is None

    def test_suppressed_blocks_firing_without_consuming(self):
        faults.install("worker_raise:times=1")
        with faults.suppressed():
            assert faults.is_suppressed()
            assert not faults.should_fire(faults.WORKER_RAISE)
        assert faults.should_fire(faults.WORKER_RAISE)

    def test_options_beat_environment(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "worker_hang")
        opts = EngineOptions(faults="worker_raise")
        assert faults.resolve_spec(opts) == "worker_raise"
        assert faults.resolve_spec(EngineOptions()) == "worker_hang"

    def test_act_raise_throws_injected_fault(self):
        with pytest.raises(InjectedFault):
            faults.act("raise")
        with pytest.raises(ValueError, match="unknown fault action"):
            faults.act("warp")


class TestOptionsValidation:
    def test_malformed_fault_spec_fails_at_options_creation(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            EngineOptions(faults="explode:times=1")

    @pytest.mark.parametrize("timeout", [0, -1.5])
    def test_non_positive_task_timeout_rejected(self, timeout):
        with pytest.raises(ValueError, match="task_timeout"):
            EngineOptions(task_timeout=timeout)

    def test_none_task_timeout_means_wait_forever(self):
        assert EngineOptions(task_timeout=None).task_timeout is None

    def test_negative_max_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            EngineOptions(max_retries=-1)

    @pytest.mark.parametrize("jobs", [0, -2])
    def test_non_positive_jobs_rejected(self, jobs):
        with pytest.raises(ValueError, match="positive integer"):
            EngineOptions(jobs=jobs)


# ---------------------------------------------------------------------------
# End-to-end recovery: the acceptance fault matrix
# ---------------------------------------------------------------------------

#: (spec, extra EngineOptions, stats counter that must show the recovery).
FAULT_MATRIX = [
    ("worker_raise:times=2", {}, "mp_retries"),
    ("worker_hang:times=1", {"task_timeout": 2.0}, "mp_timeouts"),
    ("worker_die:times=1", {"task_timeout": 2.0}, "mp_timeouts"),
    ("shm_attach_fail:times=1", {}, "mp_retries"),
]


class TestFaultMatrix:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    @pytest.mark.parametrize(
        "spec,extra,counter", FAULT_MATRIX, ids=[m[0] for m in FAULT_MATRIX]
    )
    def test_faulted_report_is_byte_identical(self, spec, extra, counter, jobs):
        layout = random_via_layout(310, instances=60)
        deck = small_deck()
        baseline = Engine(mode="sequential").check(layout, rules=deck)
        faults.clear()
        report = run(layout, deck, jobs=jobs, faults=spec, **extra)
        assert report.to_csv() == baseline.to_csv()
        stats = report.results[-1].stats
        if jobs > 1:
            assert stats["mp_shard_tasks"] > 0  # the pool really engaged
            assert stats[counter] >= 1, f"no recovery recorded in {counter}"
        else:
            # jobs == 1 runs in-process: nothing to recover from.
            assert stats.get(counter, 0) == 0

    def test_every_rule_kind_survives_worker_crashes(self):
        layout = random_via_layout(204)
        deck = every_kind_deck()
        baseline = Engine(mode="sequential").check(layout, rules=deck)
        faults.clear()
        report = run(layout, deck, jobs=2, faults="worker_raise:times=3")
        assert report.to_csv() == baseline.to_csv()
        assert report.results[-1].stats["mp_retries"] >= 1

    def test_targeted_shard_fault_recovers(self):
        # rule= scopes the fault to the spacing rule's shard tasks.
        layout = random_via_layout(311, instances=60)
        deck = small_deck()
        baseline = Engine(mode="sequential").check(layout, rules=deck)
        faults.clear()
        report = run(layout, deck, jobs=2, faults="worker_raise:rule=S,times=1")
        assert report.to_csv() == baseline.to_csv()
        assert report.results[-1].stats["mp_retries"] >= 1


class TestRecoveryLadder:
    def test_hung_worker_times_out_retries_then_runs_inline(self):
        # Every submission hangs: one timeout per attempt, retries exhaust,
        # and the rule completes in-process — the full recovery ladder.
        layout = random_via_layout(101)
        deck = [layer(1).width().greater_than(8).named("W")]
        baseline = Engine(mode="sequential").check(layout, rules=deck)
        faults.clear()
        report = run(
            layout, deck, jobs=2,
            faults="worker_hang:times=10",
            task_timeout=0.4, max_retries=1,
        )
        assert report.to_csv() == baseline.to_csv()
        stats = report.results[-1].stats
        assert stats["mp_timeouts"] == 2  # first attempt + one retry
        assert stats["mp_retries"] == 1
        assert stats["mp_inline_fallbacks"] == 1

    def test_killed_worker_loses_the_task_but_not_the_check(self):
        # SIGKILL mid-task: the pool repopulates the worker, the in-flight
        # result is gone, and the per-task timeout is what detects that.
        layout = random_via_layout(102, instances=60)
        deck = small_deck()
        baseline = Engine(mode="sequential").check(layout, rules=deck)
        faults.clear()
        report = run(
            layout, deck, jobs=2,
            faults="worker_die:times=1", task_timeout=2.0,
        )
        assert report.to_csv() == baseline.to_csv()
        stats = report.results[-1].stats
        assert stats["mp_timeouts"] >= 1
        assert stats["mp_retries"] >= 1

    def test_dead_pool_degrades_to_sequential_backend(self, monkeypatch):
        # When the pool cannot be (re)built at all, the backend must finish
        # the whole plan in-process and say so in mp_degraded.
        layout = random_via_layout(103, instances=60)
        deck = small_deck()
        reference = Engine(mode="sequential").check(layout, rules=deck)
        plan = compile_plan(
            layout, deck, EngineOptions(mode="multiproc", jobs=2)
        )
        backend = make_backend(plan)

        def no_pool():
            raise OSError("injected pool death")

        monkeypatch.setattr(backend, "_ensure_pool", no_pool)
        try:
            backend.prefetch()
            for compiled, ref in zip(plan.compiled, reference.results):
                got = CheckResult(
                    rule=compiled.rule,
                    violations=backend.run(compiled.rule),
                    seconds=0.0,
                )
                assert got.violations == ref.violations, compiled.rule.name
            assert backend.stats()["mp_degraded"] == 1
        finally:
            backend.close()


class TestPackStoreCorruption:
    def test_corrupt_entry_heals_and_counts(self, tmp_path):
        layout = random_via_layout(104, instances=60)
        deck = small_deck()
        options = lambda: EngineOptions(  # noqa: E731
            mode="parallel",
            cache_dir=str(tmp_path),
            faults="packstore_corrupt:times=1",
        )
        cold = Engine(options=options()).check(layout, rules=deck)
        # The cold run sees no existing entries, so the fault budget is
        # still live; the warm run's first store read hits it.
        warm = Engine(options=options()).check(layout, rules=deck)
        assert warm.to_csv() == cold.to_csv()
        assert warm.results[-1].stats["cache_corrupt"] >= 1
        # The corrupted entry was dropped and rewritten: a third run (no
        # faults) is clean.
        healed = Engine(
            options=EngineOptions(mode="parallel", cache_dir=str(tmp_path))
        ).check(layout, rules=deck)
        assert healed.to_csv() == cold.to_csv()
        assert healed.results[-1].stats["cache_corrupt"] == 0

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_corruption_under_the_multiprocess_backend(self, tmp_path, jobs):
        layout = random_via_layout(105, instances=60)
        deck = small_deck()
        baseline = Engine(mode="sequential").check(layout, rules=deck)
        faults.clear()
        cold = run(layout, deck, jobs=jobs, cache_dir=str(tmp_path))
        assert cold.to_csv() == baseline.to_csv()
        faults.clear()
        warm = run(
            layout, deck, jobs=jobs,
            cache_dir=str(tmp_path), faults="packstore_corrupt:times=1",
        )
        assert warm.to_csv() == baseline.to_csv()


# ---------------------------------------------------------------------------
# Resource lifecycle (the shm-leak and double-persist regressions)
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_close_unlinks_live_arenas(self, tmp_path):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        layout = random_via_layout(106)
        plan = compile_plan(
            layout, small_deck(), EngineOptions(mode="multiproc", jobs=2)
        )
        backend = make_backend(plan)
        arena = backend._new_arena()
        ref = arena.stage(np.arange(4096, dtype=np.int64))
        arena.seal()
        assert ref.block, "array should have landed in shared memory"
        block_path = os.path.join("/dev/shm", ref.block)
        assert os.path.exists(block_path)
        # close() must unlink arenas that were still live when the pool
        # went down — terminate() alone would leak the segment for good.
        backend.close()
        assert not os.path.exists(block_path)
        backend.close()  # idempotent

    def test_second_close_does_not_repersist_counters(self, tmp_path):
        layout = random_via_layout(107, instances=60)
        deck = [layer(1).spacing().greater_than(7).named("S")]
        engine = Engine(
            options=EngineOptions(
                mode="multiproc", jobs=2, cache_dir=str(tmp_path)
            )
        )
        engine.check(layout, rules=deck)  # closes the backend on the way out
        counters_file = tmp_path / "counters.json"
        snapshot = counters_file.read_text()
        backend = engine.last_checker
        # Any counter movement after the close must stay unpersisted.
        backend.plan.caches.store.misses += 5
        backend.close()
        assert counters_file.read_text() == snapshot

    def test_teardown_path_skips_persistence(self, tmp_path):
        layout = random_via_layout(108)
        plan = compile_plan(
            layout,
            small_deck(),
            EngineOptions(mode="multiproc", jobs=2, cache_dir=str(tmp_path)),
        )
        backend = make_backend(plan)
        plan.caches.store.misses += 1
        backend._close(persist=False)  # the interpreter-teardown path
        assert not (tmp_path / "counters.json").exists()
