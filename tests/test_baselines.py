import pytest

from repro.baselines import KLayoutLikeChecker, UnsupportedRuleError, XCheckChecker
from repro.core import Engine
from repro.core.rules import layer
from repro.geometry import Polygon, Transform
from repro.layout import CellReference, Layout
from repro.workloads import asap7


def small_layout() -> Layout:
    layout = Layout("bl")
    pair = layout.new_cell("pair")
    pair.add_polygon(1, Polygon.from_rect_coords(0, 0, 10, 100))
    pair.add_polygon(1, Polygon.from_rect_coords(15, 0, 25, 100))
    top = layout.new_cell("top")
    top.add_reference(CellReference("pair", Transform()))
    top.add_reference(CellReference("pair", Transform(dx=3000)))
    top.add_polygon(2, Polygon.from_rect_coords(100, 200, 104, 204))  # via, no metal
    layout.set_top("top")
    return layout


SPACING = layer(1).spacing().greater_than(8)
WIDTH = layer(1).width().greater_than(12)
AREA = layer(1).area().greater_than(1001)
ENCLOSURE = layer(2).enclosure(layer(1)).greater_than(3)


def reference_set(rule):
    report = Engine(mode="sequential").check(small_layout(), rules=[rule])
    return report.results[0].violation_set()


class TestKLayoutModes:
    @pytest.mark.parametrize("mode", ["flat", "deep", "tile"])
    @pytest.mark.parametrize(
        "rule", [SPACING, WIDTH, AREA, ENCLOSURE], ids=["space", "width", "area", "enc"]
    )
    def test_agrees_with_engine(self, mode, rule):
        checker = KLayoutLikeChecker(small_layout(), mode)
        violations, seconds = checker.run(rule)
        assert frozenset(violations) == reference_set(rule)
        assert seconds >= 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            KLayoutLikeChecker(small_layout(), "turbo")

    def test_tile_mode_reports_model_stats(self):
        checker = KLayoutLikeChecker(small_layout(), "tile", workers=4)
        checker.run(SPACING)
        assert "serial_seconds" in checker.last_stats
        assert checker.last_stats["modelled_wall_seconds"] <= (
            checker.last_stats["serial_seconds"] + 1e-9
        )

    def test_tile_dedup_across_tile_boundaries(self):
        # A violating pair that straddles a tile boundary must appear once.
        layout = Layout("straddle")
        top = layout.new_cell("top")
        top.add_polygon(1, Polygon.from_rect_coords(2040, 0, 2046, 100))
        top.add_polygon(1, Polygon.from_rect_coords(2050, 0, 2060, 100))
        layout.set_top("top")
        checker = KLayoutLikeChecker(layout, "tile", tile_size=2048)
        violations, _ = checker.run(layer(1).spacing().greater_than(8))
        assert len(violations) == 1

    def test_flat_normalization_counts_regions(self):
        checker = KLayoutLikeChecker(small_layout(), "flat")
        checker.run(SPACING)
        assert checker.last_stats.get("regions[L1]") == 4

    def test_check_deck_report(self):
        checker = KLayoutLikeChecker(small_layout(), "flat")
        report = checker.check([SPACING, WIDTH])
        assert report.mode == "klayout-flat"
        assert len(report.results) == 2


class TestXCheck:
    @pytest.mark.parametrize("rule", [SPACING, WIDTH, ENCLOSURE], ids=["space", "width", "enc"])
    def test_agrees_with_engine(self, rule):
        checker = XCheckChecker(small_layout())
        violations, _ = checker.run(rule)
        assert frozenset(violations) == reference_set(rule)

    def test_area_unsupported(self):
        checker = XCheckChecker(small_layout())
        assert not checker.supports(AREA)
        with pytest.raises(UnsupportedRuleError):
            checker.run(AREA)

    def test_flatten_cached_until_cleared(self, uart_layout):
        checker = XCheckChecker(uart_layout)
        checker.run(asap7.spacing_rule(asap7.M1))
        assert asap7.M1 in checker._flat_cache
        checker.clear_cache()
        assert checker._flat_cache == {}

    def test_device_ops_recorded(self):
        checker = XCheckChecker(small_layout())
        checker.run(SPACING)
        assert any(op.name == "xcheck-sweep" for op in checker.device.ops)


class TestBaselinesOnDesigns:
    @pytest.mark.parametrize("mode", ["flat", "deep", "tile"])
    def test_klayout_matches_engine_on_uart(self, mode, uart_layout):
        deck = [asap7.spacing_rule(asap7.M2), asap7.width_rule(asap7.M1)]
        engine_report = Engine(mode="sequential")
        checker = KLayoutLikeChecker(uart_layout, mode)
        reference = engine_report.check(uart_layout, rules=deck)
        for i, rule in enumerate(deck):
            violations, _ = checker.run(rule)
            assert frozenset(violations) == reference.results[i].violation_set()

    def test_xcheck_matches_engine_on_uart(self, uart_layout):
        deck = [asap7.spacing_rule(asap7.M2), asap7.enclosure_rule(asap7.V1, asap7.M1)]
        reference = Engine(mode="sequential").check(uart_layout, rules=deck)
        checker = XCheckChecker(uart_layout)
        for i, rule in enumerate(deck):
            violations, _ = checker.run(rule)
            assert frozenset(violations) == reference.results[i].violation_set()
