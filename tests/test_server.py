"""DRC-as-a-service: ServerState, the HTTP shell, and the CLI client path."""

import http.client
import json
import threading
import time

import pytest

from repro.cli import main
from repro.client import (
    ClientError,
    ServeClient,
    report_json_summary,
    report_json_to_csv,
)
from repro.core.engine import Engine
from repro.gdsii import read_layout, write
from repro.layout import gdsii_from_layout
from repro.server import (
    AdmissionScheduler,
    BadRequestError,
    ServerState,
    SingleFlight,
    UnknownSessionError,
    start_server,
)
from repro.workloads import InjectionPlan, asap7, build_design, inject_violations


@pytest.fixture()
def dirty_gds(tmp_path):
    layout = build_design("uart")
    inject_violations(layout, InjectionPlan(spacing=2), layer=asap7.M2, seed=1)
    path = tmp_path / "dirty.gds"
    write(gdsii_from_layout(layout), path)
    return str(path)


@pytest.fixture()
def edited_gds_pair(tmp_path):
    old = build_design("uart")
    old_path = tmp_path / "old.gds"
    write(gdsii_from_layout(old), old_path)
    new = build_design("uart")
    inject_violations(new, InjectionPlan(spacing=1), layer=asap7.M2, seed=7)
    new_path = tmp_path / "new.gds"
    write(gdsii_from_layout(new), new_path)
    return str(old_path), str(new_path)


@pytest.fixture()
def state():
    with ServerState() as st:
        yield st


def _local_report(path, top="top"):
    layout = read_layout(path)
    layout.set_top(top)
    with Engine() as engine:
        engine.add_rules(asap7.full_deck())
        return engine.check(layout)


class TestSingleFlight:
    def test_sequential_calls_each_execute(self):
        flight = SingleFlight()
        calls = []
        for i in range(3):
            value, leader = flight.do("k", lambda i=i: calls.append(i) or i)
            assert leader and value == i
        assert calls == [0, 1, 2]

    def test_concurrent_calls_coalesce(self):
        flight = SingleFlight()
        release = threading.Event()
        ran = []

        def slow():
            release.wait(10)
            ran.append(1)
            return "report"

        results = []

        def worker():
            results.append(flight.do("k", slow))

        threads = [threading.Thread(target=worker) for _ in range(5)]
        for t in threads:
            t.start()
        # Wait until the leader is registered, then let everyone pile on.
        for _ in range(200):
            if flight.waiting("k"):
                break
            time.sleep(0.005)
        time.sleep(0.05)
        release.set()
        for t in threads:
            t.join(10)
        assert len(ran) == 1
        assert [value for value, _ in results] == ["report"] * 5
        assert sum(1 for _, leader in results if leader) == 1

    def test_leader_error_fans_out_and_key_retires(self):
        flight = SingleFlight()

        def boom():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            flight.do("k", boom)
        # The key retired with the failure: a later call runs fresh.
        value, leader = flight.do("k", lambda: "ok")
        assert value == "ok" and leader


class TestSessions:
    def test_content_addressed_reuse(self, state, dirty_gds):
        first, created = state.create_session(path=dirty_gds, top="top")
        again, created_again = state.create_session(path=dirty_gds, top="top")
        assert created and not created_again
        assert first.sid == again.sid
        assert state.counters["sessions_created"] == 1
        assert state.counters["sessions_reused"] == 1

    def test_bytes_upload_lands_on_same_session(self, state, dirty_gds):
        by_path, _ = state.create_session(path=dirty_gds, top="top")
        with open(dirty_gds, "rb") as fh:
            data = fh.read()
        by_bytes, created = state.create_session(data=data, top="top")
        assert not created
        assert by_bytes.sid == by_path.sid
        # Repeat upload short-circuits on the byte hash (no re-parse).
        again, created = state.create_session(data=data, top="top")
        assert not created and again.sid == by_path.sid

    def test_unknown_session_raises_404_error(self, state):
        with pytest.raises(UnknownSessionError):
            state.check("deadbeef")

    def test_delete_session(self, state, dirty_gds):
        session, _ = state.create_session(path=dirty_gds, top="top")
        state.delete_session(session.sid)
        with pytest.raises(UnknownSessionError):
            state.session(session.sid)

    def test_bad_severity_rejected(self, state, dirty_gds):
        with pytest.raises(BadRequestError):
            state.create_session(
                path=dirty_gds, top="top", default_severity="fatal"
            )

    def test_layout_source_validation(self, state):
        with pytest.raises(BadRequestError):
            state.create_session()
        with pytest.raises(BadRequestError):
            state.create_session(path="/nonexistent.gds")


class TestServedChecks:
    def test_served_report_matches_local_engine(self, state, dirty_gds):
        session, _ = state.create_session(path=dirty_gds, top="top")
        report, meta = state.check(session.sid)
        assert meta["source"] == "engine"
        local = _local_report(dirty_gds)
        assert report.to_csv() == local.to_csv()
        # Violations JSON (the CI contract) matches too.
        served = json.loads(report.to_json(indent=None))
        expected = json.loads(local.to_json(indent=None))
        assert [r["violations"] for r in served["results"]] == [
            r["violations"] for r in expected["results"]
        ]

    def test_repeat_check_hits_report_lru(self, state, dirty_gds):
        session, _ = state.create_session(path=dirty_gds, top="top")
        first, meta1 = state.check(session.sid)
        second, meta2 = state.check(session.sid)
        assert meta1["source"] == "engine"
        assert meta2["source"] == "report-lru"
        assert second is first
        assert state.counters["engine_runs"] == 1
        assert state.counters["report_lru_hits"] == 1

    def test_concurrent_identical_requests_one_engine_run(self, state, dirty_gds):
        session, _ = state.create_session(path=dirty_gds, top="top")
        release = threading.Event()
        engine_calls = []
        real_check = state.engine.check

        def slow_check(*args, **kwargs):
            engine_calls.append(1)
            release.wait(30)
            return real_check(*args, **kwargs)

        state.engine.check = slow_check
        clients = 6
        outcomes = []

        def worker():
            outcomes.append(state.check(session.sid))

        threads = [threading.Thread(target=worker) for _ in range(clients)]
        for t in threads:
            t.start()
        # All requests registered (the counter bumps on entry) before the
        # leader is allowed to finish its engine run.
        for _ in range(400):
            if state.counters["requests"] >= clients:
                break
            time.sleep(0.005)
        time.sleep(0.05)
        release.set()
        for t in threads:
            t.join(30)
        assert len(outcomes) == clients
        assert len(engine_calls) == 1  # exactly one engine run
        assert state.counters["engine_runs"] == 1
        # Every other request was answered by the flight or the LRU.
        fanned_out = (
            state.counters["coalesced"] + state.counters["report_lru_hits"]
        )
        assert fanned_out == clients - 1
        reports = {id(report) for report, _ in outcomes}
        assert len(reports) == 1  # one report object fanned out to everyone

    def test_check_window_clips_to_window(self, state, dirty_gds):
        session, _ = state.create_session(path=dirty_gds, top="top")
        full, _ = state.check(session.sid)
        region = full.results[0].violations or [
            v for r in full.results for v in r.violations
        ]
        target = region[0].region
        windowed, meta = state.check_window(
            session.sid, [[target.xlo, target.ylo, target.xhi, target.yhi]]
        )
        assert meta["endpoint"] == "check-window"
        assert windowed.total_violations >= 1
        with pytest.raises(BadRequestError):
            state.check_window(session.sid, [[0, 0, 10]])
        with pytest.raises(BadRequestError):
            state.check_window(session.sid, [])

    def test_check_window_rejects_bad_coordinates(self, state, dirty_gds):
        session, _ = state.create_session(path=dirty_gds, top="top")
        with pytest.raises(BadRequestError):
            state.check_window(session.sid, [["abc", 0, 10, 10]])
        with pytest.raises(BadRequestError):
            state.check_window(session.sid, [[None, 0, 10, 10]])
        # Non-integral floats are rejected, not silently truncated.
        with pytest.raises(BadRequestError):
            state.check_window(session.sid, [[0.5, 0, 10, 10]])

    def test_check_window_never_becomes_session_baseline(self, state, dirty_gds):
        session, _ = state.create_session(path=dirty_gds, top="top")
        # A windowed check on a never-checked session leaves no baseline...
        state.check_window(session.sid, [[0, 0, 10, 10]])
        assert session.last_report is None
        # ...and never replaces an existing full-extent baseline.
        full, _ = state.check(session.sid)
        state.check_window(session.sid, [[0, 0, 10, 10]])
        assert session.last_report is full
        payload = state.violations(session.sid)
        assert payload["total"] == full.total_violations

    def test_recheck_after_check_window_splices_full_baseline(
        self, state, tmp_path
    ):
        # Both versions carry the same M2 violations; the edit only touches
        # M1, so the recheck reuses the cached M2 results verbatim. A
        # windowed report leaking into last_report would silently drop
        # every M2 violation outside the window.
        old = build_design("uart")
        inject_violations(old, InjectionPlan(spacing=2), layer=asap7.M2, seed=1)
        old_path = tmp_path / "old.gds"
        write(gdsii_from_layout(old), old_path)
        new = build_design("uart")
        inject_violations(new, InjectionPlan(spacing=2), layer=asap7.M2, seed=1)
        inject_violations(new, InjectionPlan(spacing=1), layer=asap7.M1, seed=7)
        new_path = tmp_path / "new.gds"
        write(gdsii_from_layout(new), new_path)

        session, _ = state.create_session(path=str(old_path), top="top")
        full, _ = state.check(session.sid)
        assert full.total_violations > 0
        state.check_window(session.sid, [[0, 0, 10, 10]])
        report, _ = state.recheck(session.sid, path=str(new_path))
        local = _local_report(str(new_path))
        assert report.to_csv() == local.to_csv()

    def test_recheck_advances_session_version(self, state, edited_gds_pair):
        old_path, new_path = edited_gds_pair
        session, _ = state.create_session(path=old_path, top="top")
        state.check(session.sid)
        assert session.version == 1
        report, meta = state.recheck(session.sid, path=new_path, verify=True)
        assert session.version == 2
        assert "recheck" in meta
        local = _local_report(new_path)
        assert report.to_csv() == local.to_csv()
        # The session now serves the new version's violations.
        payload = state.violations(session.sid)
        assert payload["total"] == report.total_violations


class TestViolationsFiltering:
    def test_severity_rule_and_bbox_filters(self, state, dirty_gds):
        session, _ = state.create_session(
            path=dirty_gds,
            top="top",
            severities={"M2.S.1": "warning"},
            default_severity="error",
        )
        everything = state.violations(session.sid)
        assert everything["total"] > 0
        assert {v["severity"] for v in everything["violations"]} >= {"warning"}

        warnings = state.violations(session.sid, severity="warning")
        assert warnings["total"] > 0
        assert all(v["severity"] == "warning" for v in warnings["violations"])
        assert all(v["rule"] == "M2.S.1" for v in warnings["violations"])

        named = state.violations(session.sid, rules=["M2.S.1"])
        assert named["total"] == warnings["total"]

        first = everything["violations"][0]["region"]
        boxed = state.violations(session.sid, bbox=first)
        assert boxed["total"] >= 1

        far = state.violations(session.sid, bbox=[10**8, 10**8, 10**8 + 1, 10**8 + 1])
        assert far["total"] == 0

    def test_bad_filters_rejected(self, state, dirty_gds):
        session, _ = state.create_session(path=dirty_gds, top="top")
        with pytest.raises(BadRequestError):
            state.violations(session.sid, severity="fatal")
        with pytest.raises(BadRequestError):
            state.violations(session.sid, rules=["NO.SUCH.RULE"])
        with pytest.raises(BadRequestError):
            state.violations(session.sid, bbox=[0, 0, 1])
        with pytest.raises(BadRequestError):
            state.violations(session.sid, bbox=[0, 0, "x", 1])

    def test_stats_shape(self, state, dirty_gds):
        session, _ = state.create_session(path=dirty_gds, top="top")
        state.check(session.sid)
        stats = state.stats()
        assert stats["sessions"] == 1
        assert stats["queue_depth"] == 0
        assert stats["counters"]["engine_runs"] == 1
        assert stats["latency"]["check"]["count"] == 1
        assert stats["options"]["mode"] == "sequential"


class TestHTTP:
    @pytest.fixture()
    def served(self):
        state = ServerState()
        with start_server(state) as handle:
            yield handle

    def test_health_and_stats(self, served):
        client = ServeClient(served.url)
        assert client.health()["status"] == "ok"
        assert "counters" in client.stats()

    def test_full_check_round_trip(self, served, dirty_gds):
        client = ServeClient(served.url)
        info = client.create_session(path=dirty_gds, top="top")
        assert info["created"] is True
        response = client.check(info["session"])
        local = _local_report(dirty_gds)
        assert report_json_to_csv(response["report"]) == local.to_csv()
        assert report_json_summary(
            json.loads(local.to_json(indent=None))
        ) == local.summary()
        # Re-dumping the served report is byte-identical to local --format json
        # apart from the measured seconds, which are honest wall times.
        served_json = json.dumps(response["report"], indent=2, sort_keys=True)
        assert json.loads(served_json) == response["report"]

    def test_upload_bytes_round_trip(self, served, dirty_gds):
        client = ServeClient(served.url)
        with open(dirty_gds, "rb") as fh:
            data = fh.read()
        info = client.create_session(data=data, top="top")
        repeat = client.create_session(data=data, top="top")
        assert repeat["session"] == info["session"]
        assert repeat["created"] is False
        violations = client.violations(info["session"], severity="error")
        assert violations["total"] > 0

    def test_errors_carry_status(self, served):
        client = ServeClient(served.url)
        with pytest.raises(ClientError) as excinfo:
            client.check("deadbeef")
        assert excinfo.value.status == 404
        with pytest.raises(ClientError) as excinfo:
            client.create_session(path="/nonexistent.gds")
        assert excinfo.value.status == 400
        with pytest.raises(ClientError) as excinfo:
            client._request("GET", "/no/such/route")
        assert excinfo.value.status == 404

    def test_delete_and_sessions_listing(self, served, dirty_gds):
        client = ServeClient(served.url)
        info = client.create_session(path=dirty_gds, top="top")
        assert any(s["session"] == info["session"] for s in client.sessions())
        client.delete_session(info["session"])
        assert client.sessions() == []

    def test_bad_window_coordinates_are_400_not_500(self, served, dirty_gds):
        client = ServeClient(served.url)
        info = client.create_session(path=dirty_gds, top="top")
        with pytest.raises(ClientError) as excinfo:
            client.check_window(info["session"], [["abc", 0, 10, 10]])
        assert excinfo.value.status == 400

    def test_client_rejects_severities_with_raw_upload(self):
        client = ServeClient("http://127.0.0.1:1")  # never contacted
        with pytest.raises(ValueError):
            client.create_session(data=b"\x00\x06", severities={"R": "warning"})

    def test_shutdown_drains_idle_keepalive_connection(self, monkeypatch):
        from repro.server.http import DrcRequestHandler

        # Idle keep-alive connections must be bounded, or the drain in
        # server_close() joins their handler threads forever.
        assert DrcRequestHandler.timeout is not None
        monkeypatch.setattr(DrcRequestHandler, "timeout", 0.5)
        handle = start_server(ServerState())
        host, port = handle.server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request("GET", "/health")
            response = conn.getresponse()
            assert response.status == 200
            response.read()
            # The connection is now idle but still open (HTTP/1.1
            # keep-alive); closing the server must not hang on it.
            start = time.monotonic()
            handle.close()
            assert time.monotonic() - start < 8
        finally:
            conn.close()

    def test_recheck_over_http(self, served, edited_gds_pair):
        old_path, new_path = edited_gds_pair
        client = ServeClient(served.url)
        info = client.create_session(path=old_path, top="top")
        client.check(info["session"])
        response = client.recheck(info["session"], path=new_path, verify=True)
        assert response["meta"]["recheck"]["cache_hit"] is False
        local = _local_report(new_path)
        assert report_json_to_csv(response["report"]) == local.to_csv()


class TestCLIServer:
    def test_check_via_server_matches_local(self, dirty_gds, capsys):
        state = ServerState()
        with start_server(state) as handle:
            code = main(
                ["check", dirty_gds, "--top", "top", "--server", handle.url,
                 "--format", "csv"]
            )
            served_out = capsys.readouterr().out
        assert code == 1  # dirty design: violations found
        main(["check", dirty_gds, "--top", "top", "--format", "csv"])
        local_out = capsys.readouterr().out
        assert served_out == local_out

    def test_server_rejects_output_and_waivers(self, dirty_gds):
        with pytest.raises(SystemExit):
            main(
                ["check", dirty_gds, "--server", "http://127.0.0.1:1",
                 "--output", "markers.json"]
            )

    def test_unreachable_server_exits_cleanly(self, dirty_gds):
        with pytest.raises(SystemExit):
            main(["check", dirty_gds, "--server", "http://127.0.0.1:1"])


class TestAdmissionScheduler:
    def test_rejects_non_positive_max(self):
        with pytest.raises(ValueError):
            AdmissionScheduler(0)

    def test_caps_active_runs(self):
        sched = AdmissionScheduler(2)
        release = threading.Event()
        third_entered = threading.Event()

        def hold(sid):
            with sched.admit(sid):
                release.wait(20)

        holders = [
            threading.Thread(target=hold, args=(sid,)) for sid in ("a", "b")
        ]
        for t in holders:
            t.start()
        for _ in range(400):
            if sched.active == 2:
                break
            time.sleep(0.005)
        assert sched.active == 2

        def third():
            with sched.admit("c"):
                third_entered.set()

        t3 = threading.Thread(target=third)
        t3.start()
        # The third distinct session must park: the cap is 2.
        assert not third_entered.wait(0.2)
        assert sched.waiting == 1
        release.set()
        t3.join(20)
        for t in holders:
            t.join(20)
        assert third_entered.is_set()
        assert sched.active == 0
        assert sched.waiting == 0
        assert sched.max_active_seen == 2

    def test_same_session_serializes(self):
        sched = AdmissionScheduler(4)
        release = threading.Event()
        second_entered = threading.Event()

        def first():
            with sched.admit("s"):
                release.wait(20)

        t1 = threading.Thread(target=first)
        t1.start()
        for _ in range(400):
            if sched.active == 1:
                break
            time.sleep(0.005)

        def second():
            with sched.admit("s"):
                second_entered.set()

        t2 = threading.Thread(target=second)
        t2.start()
        # Same sid: must wait even though 3 slots are free.
        assert not second_entered.wait(0.2)
        release.set()
        t1.join(20)
        t2.join(20)
        assert second_entered.is_set()
        assert sched.max_active_seen == 1


@pytest.fixture()
def dirty_gds_b(tmp_path):
    layout = build_design("uart")
    inject_violations(layout, InjectionPlan(spacing=2), layer=asap7.M2, seed=5)
    path = tmp_path / "dirty_b.gds"
    write(gdsii_from_layout(layout), path)
    return str(path)


class TestConcurrentServing:
    def test_distinct_sessions_run_concurrently(self, dirty_gds, dirty_gds_b):
        # Two sessions, max_concurrent=2: both engine runs must be inside
        # the engine at the same instant (the barrier would time out and
        # fail the test under the old global engine lock).
        with ServerState(max_concurrent=2) as state:
            s1, _ = state.create_session(path=dirty_gds, top="top")
            s2, _ = state.create_session(path=dirty_gds_b, top="top")
            assert s1.sid != s2.sid
            both_inside = threading.Barrier(2)
            real_check = state.engine.check

            def overlapping_check(*args, **kwargs):
                both_inside.wait(30)
                return real_check(*args, **kwargs)

            state.engine.check = overlapping_check
            errors = []

            def client(sid):
                try:
                    state.check(sid)
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)

            threads = [
                threading.Thread(target=client, args=(sid,))
                for sid in (s1.sid, s2.sid)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
            assert not errors
            assert state.scheduler.max_active_seen == 2
            assert state.counters["engine_runs"] == 2

    @pytest.mark.parametrize("max_concurrent", [1, 2, 4])
    def test_byte_identical_reports_at_any_concurrency(
        self, dirty_gds, dirty_gds_b, max_concurrent
    ):
        # The acceptance gate: served reports are byte-identical to a local
        # engine run at every concurrency level, under concurrent clients.
        local_a = _local_report(dirty_gds)
        local_b = _local_report(dirty_gds_b)
        with ServerState(max_concurrent=max_concurrent) as state:
            s1, _ = state.create_session(path=dirty_gds, top="top")
            s2, _ = state.create_session(path=dirty_gds_b, top="top")
            results = []
            errors = []

            def client(sid, expected_csv):
                try:
                    report, _ = state.check(sid)
                    results.append(report.to_csv() == expected_csv)
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)

            threads = []
            for _ in range(2):
                threads.append(
                    threading.Thread(
                        target=client, args=(s1.sid, local_a.to_csv())
                    )
                )
                threads.append(
                    threading.Thread(
                        target=client, args=(s2.sid, local_b.to_csv())
                    )
                )
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
            assert not errors
            assert results == [True] * 4

    def test_identical_recheck_bypasses_admission(self, state, dirty_gds):
        session, _ = state.create_session(path=dirty_gds, top="top")
        first, _ = state.check(session.sid)
        assert state.counters["engine_runs"] == 1
        # Same bytes again: digest-identical content, splice-only recheck.
        report, meta = state.recheck(session.sid, path=dirty_gds)
        assert meta["recheck"]["clean"] is True
        assert report.to_csv() == first.to_csv()
        assert state.counters["admission_bypassed"] == 1
        assert state.counters["engine_runs"] == 1  # no new engine run
        # verify=True is a full cold check: it must NOT bypass.
        state.recheck(session.sid, path=dirty_gds, verify=True)
        assert state.counters["admission_bypassed"] == 1
        assert state.counters["engine_runs"] == 2

    def test_inline_route_prices_small_requests(self, dirty_gds):
        from repro.core.engine import EngineOptions

        options = EngineOptions(mode="multiproc", jobs=2)
        with ServerState(options=options, max_concurrent=2) as state:
            session, _ = state.create_session(path=dirty_gds, top="top")
            # Never routed without a previous run to price against.
            assert state._inline_route(session) is None
            session.last_engine_seconds = 1e-6
            # ...or while this is the only active request.
            assert state._inline_route(session) is None
            with state.scheduler.admit("other"):
                with state.scheduler.admit(session.sid):
                    routed = state._inline_route(session)
                    assert routed is not None
                    assert routed.jobs == 1
                    assert routed.mode == "multiproc"
                    # A previous run too big for inline keeps the pool.
                    session.last_engine_seconds = 1e6
                    assert state._inline_route(session) is None

    def test_jobs1_options_never_route_inline(self, state, dirty_gds):
        session, _ = state.create_session(path=dirty_gds, top="top")
        session.last_engine_seconds = 1e-6
        with state.scheduler.admit("other"):
            assert state._inline_route(session) is None


class TestStatsExtended:
    def test_percentiles_requests_and_gauges(self, state, dirty_gds):
        session, _ = state.create_session(path=dirty_gds, top="top")
        state.check(session.sid)
        state.check(session.sid)  # LRU hit; still a request
        stats = state.stats()
        check = stats["latency"]["check"]
        assert check["count"] == 2
        assert check["requests"] == 2
        assert check["p50_ms"] <= check["p95_ms"] <= check["p99_ms"]
        assert check["p99_ms"] <= check["max_ms"]
        assert stats["queue_depth"] == 0
        assert stats["active_requests"] == 0
        assert stats["max_concurrent"] == 1  # sequential default: min(1, 2)
        assert stats["max_active_seen"] == 1
        assert stats["counters"]["admission_bypassed"] == 0

    def test_single_sample_percentiles_degenerate(self, state, dirty_gds):
        session, _ = state.create_session(path=dirty_gds, top="top")
        state.check(session.sid)
        check = state.stats()["latency"]["check"]
        assert check["count"] == 1
        assert check["p50_ms"] == check["p95_ms"] == check["p99_ms"]


class TestWaitReady:
    def test_returns_health_payload_when_up(self):
        state = ServerState()
        with start_server(state) as handle:
            payload = ServeClient(handle.url).wait_ready(timeout=10)
        assert payload["status"] == "ok"

    def test_times_out_against_dead_endpoint(self):
        client = ServeClient("http://127.0.0.1:1")
        start = time.monotonic()
        with pytest.raises(ClientError, match="not ready"):
            client.wait_ready(timeout=0.3)
        assert time.monotonic() - start < 5

    def test_http_errors_propagate_immediately(self, monkeypatch):
        client = ServeClient("http://127.0.0.1:1")
        calls = []

        def failing_health():
            calls.append(1)
            raise ClientError("boom", status=500)

        monkeypatch.setattr(client, "health", failing_health)
        with pytest.raises(ClientError, match="boom"):
            client.wait_ready(timeout=5)
        assert calls == [1]  # up-but-unhappy is not a startup race
