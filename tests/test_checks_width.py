from repro.checks import ViolationKind, check_polygon_width, check_width
from repro.geometry import Polygon, Rect


class TestRectangles:
    def test_narrow_rect_flagged(self):
        wire = Polygon.from_rect_coords(0, 0, 10, 100)
        violations = check_polygon_width(wire, 1, 12)
        assert len(violations) == 1
        v = violations[0]
        assert v.kind is ViolationKind.WIDTH
        assert v.measured == 10 and v.required == 12
        assert v.region == Rect(0, 0, 10, 100)

    def test_exact_width_passes(self):
        wire = Polygon.from_rect_coords(0, 0, 10, 100)
        assert check_polygon_width(wire, 1, 10) == []

    def test_short_rect_flagged_in_both_axes(self):
        tiny = Polygon.from_rect_coords(0, 0, 5, 7)
        violations = check_polygon_width(tiny, 1, 10)
        measured = sorted(v.measured for v in violations)
        assert measured == [5, 7]

    def test_square_wide_enough(self):
        assert check_polygon_width(Polygon.from_rect_coords(0, 0, 50, 50), 1, 10) == []


class TestRectilinearShapes:
    def test_l_shape_thin_arm(self):
        # Vertical arm is 8 wide, horizontal foot is 40 tall.
        l_shape = Polygon([(0, 0), (0, 100), (8, 100), (8, 40), (60, 40), (60, 0)])
        violations = check_polygon_width(l_shape, 1, 10)
        assert len(violations) == 1
        assert violations[0].measured == 8
        assert violations[0].region == Rect(0, 40, 8, 100)

    def test_u_shape_arms(self):
        # Both arms 6 wide, base 20 tall.
        u = Polygon(
            [(0, 0), (0, 100), (6, 100), (6, 20), (30, 20), (30, 100), (36, 100), (36, 0)]
        )
        violations = check_polygon_width(u, 1, 10)
        arm_violations = [v for v in violations if v.measured == 6]
        assert len(arm_violations) == 2

    def test_t_shape_stem(self):
        t = Polygon(
            [(20, 0), (20, 50), (0, 50), (0, 60), (50, 60), (50, 50), (28, 50), (28, 0)]
        )
        violations = check_polygon_width(t, 1, 10)
        assert any(v.measured == 8 for v in violations)  # stem
        assert any(v.measured == 10 for v in violations) is False  # bar exactly 10

    def test_zero_gap_edges_not_width(self):
        # Facing requires strictly positive separation.
        square = Polygon.from_rect_coords(0, 0, 10, 10)
        assert check_polygon_width(square, 1, 10) == []


class TestCollection:
    def test_check_width_aggregates(self):
        polys = [
            Polygon.from_rect_coords(0, 0, 5, 100),
            Polygon.from_rect_coords(100, 0, 150, 100),
            Polygon.from_rect_coords(200, 0, 203, 100),
        ]
        violations = check_width(polys, 7, 10)
        assert sorted(v.measured for v in violations) == [3, 5]
        assert all(v.layer == 7 for v in violations)
