"""The violation lifecycle: severity, waivers, dedup, and report diffing.

End-to-end coverage of the PR 10 lifecycle layer: per-rule severity flows
from :class:`Rule` through results, reports, exit codes, and the serve
daemon; waivers are geometry-anchored and mark-not-drop (so spliced
incremental reports stay byte-identical to cold ones); hierarchical
repeats collapse in CSV; and ``repro diff`` turns two marker databases
into a CI-gateable regression verdict.
"""

import csv as csv_module
import io
import json

import pytest

from repro.checks.base import Violation, ViolationKind
from repro.cli import main
from repro.core import Engine, EngineOptions
from repro.core.incremental import recheck
from repro.core.markers import (
    MarkerError,
    apply_waivers,
    load_markers,
    load_waivers,
    report_from_dict,
    report_to_dict,
    save_markers,
    save_waivers,
    violation_digest,
    waivers_for,
)
from repro.core.reportcache import deck_digest
from repro.core.results import CheckReport, CheckResult
from repro.core.rules import Rule, RuleError, layer
from repro.geometry import Polygon, Rect
from repro.layout import Layout, gdsii_from_layout
from repro.gdsii import write
from repro.reporting import (
    SEVERITIES,
    apply_waivers_payload,
    csv_quote,
    dedup_instances,
    filter_violations_payload,
    marker_digest,
    payload_totals,
)
from repro.workloads import InjectionPlan, asap7, build_design, inject_violations


def dirty_layout(seed=4):
    layout = build_design("uart")
    inject_violations(
        layout, InjectionPlan(spacing=3, width=2), layer=asap7.M2, seed=seed
    )
    return layout


def lifecycle_deck():
    return [asap7.spacing_rule(asap7.M2), asap7.width_rule(asap7.M2)]


def dirty_report():
    return Engine(mode="sequential").check(dirty_layout(), rules=lifecycle_deck())


@pytest.fixture()
def dirty_gds(tmp_path):
    path = tmp_path / "dirty.gds"
    write(gdsii_from_layout(dirty_layout()), path)
    return str(path)


@pytest.fixture()
def deck_file(tmp_path):
    """A deck file whose spacing rule is demoted to warning severity."""
    path = tmp_path / "deck.py"
    path.write_text(
        "from repro.workloads import asap7\n"
        "RULES = [\n"
        "    asap7.spacing_rule(asap7.M2).as_warning(),\n"
        "    asap7.width_rule(asap7.M2),\n"
        "]\n"
    )
    return str(path)


# ---------------------------------------------------------------------------
# Severity on the rule, through results and exit codes
# ---------------------------------------------------------------------------


class TestSeverity:
    def test_severity_is_validated(self):
        with pytest.raises(RuleError):
            layer(1).spacing().greater_than(8).with_severity("fatal")

    def test_as_warning_copies(self):
        rule = layer(1).spacing().greater_than(8).named("S")
        warn = rule.as_warning()
        assert rule.severity == "error"
        assert warn.severity == "warning"
        assert warn.name == "S" and warn.value == rule.value

    def test_warning_rules_never_block(self):
        report = Engine(mode="sequential").check(
            dirty_layout(), rules=[r.as_warning() for r in lifecycle_deck()]
        )
        assert report.total_violations > 0
        assert report.blocking_violations == 0
        assert report.ok and not report.passed

    def test_error_rules_block(self):
        report = dirty_report()
        assert report.blocking_violations == report.total_violations
        assert not report.ok

    def test_severity_changes_deck_digest(self):
        deck = lifecycle_deck()
        warn = [deck[0].as_warning(), deck[1]]
        assert deck_digest(deck) != deck_digest(warn)

    def test_severity_in_payload_and_summary(self):
        report = Engine(mode="sequential").check(
            dirty_layout(), rules=[lifecycle_deck()[0].as_warning()]
        )
        payload = report.payload()
        assert payload["results"][0]["severity"] == "warning"
        assert payload["blocking_violations"] == 0
        assert "[warning]" in report.summary()
        assert "0 blocking" in report.summary()

    def test_cli_exit_zero_on_warning_only_violations(self, dirty_gds, deck_file, tmp_path, capsys):
        width_only = tmp_path / "warn_all.py"
        width_only.write_text(
            "from repro.workloads import asap7\n"
            "RULES = [asap7.spacing_rule(asap7.M2).as_warning(),\n"
            "         asap7.width_rule(asap7.M2).as_warning()]\n"
        )
        code = main(["check", dirty_gds, "--top", "top", "--deck", str(width_only)])
        out = capsys.readouterr().out
        assert code == 0
        assert "[warning]" in out

    def test_cli_exit_one_on_error_violations(self, dirty_gds, deck_file):
        code = main(["check", dirty_gds, "--top", "top", "--deck", deck_file])
        assert code == 1  # the width rule is still error-severity


# ---------------------------------------------------------------------------
# CSV: RFC 4180 quoting and hierarchical instance dedup
# ---------------------------------------------------------------------------


class TestCsv:
    def test_quote_only_when_needed(self):
        assert csv_quote("M2.S.1") == "M2.S.1"
        assert csv_quote('sp,min "drawn"') == '"sp,min ""drawn"""'

    def test_hostile_rule_name_round_trips(self):
        name = 'spacing, M2 "drawn" layer'
        rule = layer(1).spacing().greater_than(8).named(name)
        layout = Layout("q")
        top = layout.new_cell("top")
        top.add_polygon(1, Polygon.from_rect_coords(0, 0, 10, 100))
        top.add_polygon(1, Polygon.from_rect_coords(15, 0, 25, 100))
        layout.set_top("top")
        report = Engine(mode="sequential").check(layout, rules=[rule])
        assert report.total_violations == 1
        text = report.to_csv()
        rows = list(csv_module.reader(io.StringIO(text)))
        assert rows[1][0] == name  # the csv module recovers the exact name
        assert len(rows[1]) == len(rows[0])  # no sheared columns

    def test_instance_dedup_collapses_translated_repeats(self):
        layout = Layout("arr")
        pair = layout.new_cell("pair")
        pair.add_polygon(1, Polygon.from_rect_coords(0, 0, 10, 100))
        pair.add_polygon(1, Polygon.from_rect_coords(16, 0, 26, 100))
        top = layout.new_cell("top")
        from repro.geometry import Transform
        from repro.layout import CellReference

        for i in range(4):
            top.add_reference(CellReference("pair", Transform(dx=i * 5000)))
        layout.set_top("top")
        report = Engine(mode="sequential").check(
            layout, rules=[layer(1).spacing().greater_than(8)]
        )
        assert report.total_violations == 4
        collapsed = report.to_csv().splitlines()
        assert len(collapsed) == 1 + 1
        assert collapsed[1].endswith(",4")  # instances column
        expanded = report.to_csv(expand_instances=True).splitlines()
        assert len(expanded) == 1 + 4
        assert all(line.endswith(",1") for line in expanded[1:])
        # The summary reports the distinct count next to the raw one.
        assert "4 violations, 1 distinct" in report.summary()

    def test_waived_and_unwaived_do_not_collapse_together(self):
        v = {
            "kind": "spacing", "layer": 1, "other_layer": None,
            "region": [0, 0, 5, 100], "measured": 5, "required": 8,
        }
        shifted = dict(v, region=[100, 0, 105, 100])
        waived = dict(shifted, waived=True)
        assert len(dedup_instances([v, shifted])) == 1
        assert len(dedup_instances([v, waived])) == 2


# ---------------------------------------------------------------------------
# Marker database v2: severity / stats / waived round-trip
# ---------------------------------------------------------------------------


class TestMarkerFormat:
    def test_v2_round_trips_severity_stats_waived(self, tmp_path):
        report = Engine(mode="sequential").check(
            dirty_layout(), rules=[lifecycle_deck()[0].as_warning()]
        )
        report = apply_waivers(
            report,
            [{"rule": "*", "marker": violation_digest(report.results[0].violations[0])}],
        )
        path = tmp_path / "m.json"
        save_markers(report, path)
        loaded = load_markers(path)
        assert loaded.results[0].rule.severity == "warning"
        assert loaded.results[0].stats == report.results[0].stats
        assert loaded.results[0].num_waived == 1
        assert loaded.results[0].violations[0].waived
        # What cannot round-trip is documented: phase profiles drop.
        assert loaded.results[0].profile is None

    def test_v1_databases_still_load_with_defaults(self):
        data = report_to_dict(dirty_report())
        data["format"] = 1
        for entry in data["results"]:
            del entry["severity"], entry["stats"]
            for v in entry["violations"]:
                v.pop("waived", None)
        loaded = report_from_dict(data)
        assert all(r.rule.severity == "error" for r in loaded.results)
        assert all(r.stats == {} for r in loaded.results)
        assert all(not v.waived for r in loaded.results for v in r.violations)


# ---------------------------------------------------------------------------
# Waivers: geometry anchoring and edge cases
# ---------------------------------------------------------------------------


class TestWaiverEdgeCases:
    def test_region_boundary_marker_is_waived(self):
        report = dirty_report()
        target = report.result("M2.S.1").violations[0]
        r = target.region
        # The waiver box IS the marker box: boundary contact counts.
        waived = apply_waivers(
            report, [{"rule": "M2.S.1", "region": [r.xlo, r.ylo, r.xhi, r.yhi]}]
        )
        assert any(
            v.waived and v.region == r
            for v in waived.result("M2.S.1").violations
        )

    def test_wildcard_marker_waiver(self):
        report = dirty_report()
        target = report.result("M2.W.1").violations[0]
        waived = apply_waivers(
            report, [{"rule": "*", "marker": violation_digest(target)}]
        )
        assert waived.total_waived == 1
        assert waived.result("M2.W.1").num_waived == 1
        assert waived.result("M2.S.1").num_waived == 0

    def test_empty_waiver_file_is_a_no_op(self, tmp_path):
        path = tmp_path / "w.json"
        save_waivers([], path)
        assert load_waivers(path) == []
        report = dirty_report()
        waived = apply_waivers(report, [])
        assert waived.total_waived == 0
        assert waived.to_json() == report.to_json()

    def test_marker_waiver_survives_unrelated_edit(self):
        """The geometry anchor: same violation, different layout version."""
        deck = lifecycle_deck()
        before = Engine(mode="sequential").check(dirty_layout(), rules=deck)
        edited = dirty_layout()
        edited.top_cell().add_polygon(
            19, Polygon.from_rect_coords(40000, 40000, 40400, 40900)
        )
        after = Engine(mode="sequential").check(edited, rules=deck)
        target = before.result("M2.S.1").violations[0]
        waivers = [{"rule": "M2.S.1", "marker": violation_digest(target)}]
        waived_after = apply_waivers(after, waivers)
        assert waived_after.result("M2.S.1").num_waived == 1

    def test_waivers_for_emits_deduped_marker_records(self):
        report = dirty_report()
        records = waivers_for(report, rules=["M2.S.1"], reason="known bad")
        assert records
        assert all(r["rule"] == "M2.S.1" for r in records)
        assert all(r["reason"] == "known bad" for r in records)
        assert len({r["marker"] for r in records}) == len(records)
        # Applying the generated waivers waives exactly that rule's set.
        waived = apply_waivers(report, records)
        assert waived.result("M2.S.1").num_blocking == 0
        assert waived.result("M2.W.1").num_waived == 0

    def test_waivers_after_splice_match_cold(self):
        """Spliced-then-waived equals cold-then-waived, byte for byte."""
        deck = [lifecycle_deck()[0].as_warning(), lifecycle_deck()[1]]
        old = build_design("uart")
        new = dirty_layout(seed=9)
        baseline = Engine(mode="sequential").check(old, rules=deck)
        outcome = recheck(
            old, new, rules=deck, options=EngineOptions(), cached=baseline
        )
        cold = Engine(mode="sequential").check(new, rules=deck)
        waivers = waivers_for(cold, rules=["M2.W.1"])
        spliced_waived = apply_waivers(outcome.report, waivers)
        cold_waived = apply_waivers(cold, waivers)
        assert spliced_waived.total_waived == cold_waived.total_waived > 0
        a, b = spliced_waived.payload(), cold_waived.payload()
        # The mode label ("recheck" vs "sequential") and the measured
        # timings/counters are honest run metadata; everything else —
        # violations, waived flags, severities, totals — must match.
        a["mode"] = b["mode"] = "x"
        for entry in (*a["results"], *b["results"]):
            entry["seconds"] = 0.0
            entry["stats"] = {}
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_payload_waiver_application_matches_report_path(self):
        report = dirty_report()
        target = report.result("M2.S.1").violations[0]
        waivers = [{"rule": "M2.S.1", "marker": violation_digest(target)}]
        via_report = apply_waivers(report, waivers).payload()
        via_payload = apply_waivers_payload(report.payload(), waivers)
        assert json.dumps(via_report, sort_keys=True) == json.dumps(
            via_payload, sort_keys=True
        )
        assert payload_totals(via_payload)["total_waived"] == 1

    def test_waived_flag_outside_violation_identity(self):
        v = Violation(
            kind=ViolationKind.SPACING, layer=1,
            region=Rect(0, 0, 5, 100), measured=5, required=8,
        )
        assert v.waive() == v
        assert hash(v.waive()) == hash(v)
        assert marker_digest(
            {"kind": "spacing", "layer": 1, "other_layer": None,
             "region": [0, 0, 5, 100], "measured": 5, "required": 8,
             "waived": True}
        ) == violation_digest(v)


# ---------------------------------------------------------------------------
# repro diff / waive / violations
# ---------------------------------------------------------------------------


def _single_rule_report(violations, name="R", severity="error"):
    rule = layer(1).spacing().greater_than(8).named(name).with_severity(severity)
    return CheckReport(
        "synthetic", "sequential", [CheckResult(rule, violations, 0.0)]
    )


def _mk_violation(x, waived=False):
    v = Violation(
        kind=ViolationKind.SPACING, layer=1,
        region=Rect(x, 0, x + 5, 100), measured=5, required=8,
    )
    return v.waive() if waived else v


class TestDiffCommand:
    def _write(self, tmp_path, name, violations):
        path = tmp_path / name
        save_markers(_single_rule_report(violations), path)
        return str(path)

    def test_exit_zero_when_no_new_violations(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", [_mk_violation(0), _mk_violation(50)])
        new = self._write(tmp_path, "new.json", [_mk_violation(0)])
        code = main(["diff", old, new])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 fixed" in out and "0 new" in out and "no regressions" in out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", [_mk_violation(0)])
        new = self._write(tmp_path, "new.json", [_mk_violation(0), _mk_violation(50)])
        code = main(["diff", old, new])
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSION: 1 new unwaived violation(s)" in out

    def test_waived_new_violations_do_not_fail(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", [_mk_violation(0)])
        new = self._write(
            tmp_path, "new.json", [_mk_violation(0), _mk_violation(50, waived=True)]
        )
        code = main(["diff", old, new])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 of the new waived" in out

    def test_json_format(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", [_mk_violation(0)])
        new = self._write(tmp_path, "new.json", [_mk_violation(0), _mk_violation(50)])
        code = main(["diff", old, new, "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["rules"]["R"] == {
            "fixed": 0, "new": 1, "new_waived": 0, "unchanged": 1
        }
        assert payload["regressions"] == 1

    def test_bad_database_exits_cleanly(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(SystemExit):
            main(["diff", str(bad), str(bad)])


class TestWaiveCommand:
    def test_generate_then_apply(self, dirty_gds, tmp_path, capsys):
        markers = tmp_path / "markers.json"
        main(
            ["check", dirty_gds, "--top", "top", "--output", str(markers),
             "--format", "json"]
        )
        capsys.readouterr()
        waivers = tmp_path / "waivers.json"
        code = main(
            ["waive", str(markers), "-o", str(waivers), "--rule", "M2.S.1",
             "--reason", "legacy block"]
        )
        assert code == 0
        records = load_waivers(waivers)
        assert records and all("marker" in r for r in records)
        # A fully waived check of the same layout exits clean on that rule.
        code = main(
            ["check", dirty_gds, "--top", "top", "--waivers", str(waivers)]
        )
        out = capsys.readouterr().out
        assert "waived" in out
        assert code == 1  # the width rule still blocks


class TestViolationsCommand:
    def test_local_filtering_matches_served(self, dirty_gds, tmp_path, capsys):
        from repro.server import ServerState

        markers = tmp_path / "markers.json"
        main(
            ["check", dirty_gds, "--top", "top", "--output", str(markers),
             "--format", "json"]
        )
        capsys.readouterr()
        code = main(["violations", str(markers), "--rule", "M2.S.1"])
        local = json.loads(capsys.readouterr().out)
        assert code == 0
        with ServerState() as state:
            session, _ = state.create_session(path=dirty_gds, top="top")
            served = state.violations(session.sid, rules=["M2.S.1"])
        assert json.dumps(local, sort_keys=True) == json.dumps(
            {"total": served["total"], "violations": served["violations"]},
            sort_keys=True,
        )

    def test_unknown_rule_rejected(self, tmp_path):
        markers = tmp_path / "m.json"
        save_markers(_single_rule_report([_mk_violation(0)]), markers)
        with pytest.raises(SystemExit):
            main(["violations", str(markers), "--rule", "nope"])

    def test_no_waived_drops_waived_rows(self, tmp_path, capsys):
        markers = tmp_path / "m.json"
        save_markers(
            _single_rule_report([_mk_violation(0), _mk_violation(50, waived=True)]),
            markers,
        )
        main(["violations", str(markers)])
        assert json.loads(capsys.readouterr().out)["total"] == 2
        main(["violations", str(markers), "--no-waived"])
        assert json.loads(capsys.readouterr().out)["total"] == 1


# ---------------------------------------------------------------------------
# Served severity and client-side waivers
# ---------------------------------------------------------------------------


class TestServedLifecycle:
    def test_session_severity_overrides_live_on_rules(self, dirty_gds):
        from repro.server import ServerState

        with ServerState() as state:
            session, _ = state.create_session(
                path=dirty_gds, top="top",
                severities={"M2.S.1": "warning"},
            )
            by_name = {r.name: r.severity for r in session.rules}
            assert by_name["M2.S.1"] == "warning"
            assert session.info()["severities"]["M2.S.1"] == "warning"
            # Different severities → different content address.
            plain, created = state.create_session(path=dirty_gds, top="top")
            assert created and plain.sid != session.sid

    def test_unknown_severity_rule_rejected(self, dirty_gds):
        from repro.server import ServerState
        from repro.server.state import BadRequestError

        with ServerState() as state:
            with pytest.raises(BadRequestError):
                state.create_session(
                    path=dirty_gds, top="top", severities={"nope": "warning"}
                )

    def test_served_severity_filter_matches_local(self, dirty_gds):
        from repro.server import ServerState

        with ServerState() as state:
            session, _ = state.create_session(
                path=dirty_gds, top="top", default_severity="warning"
            )
            state.check(session.sid)
            served = state.violations(session.sid, severity="warning")
            local = Engine(mode="sequential").check(
                dirty_layout(), rules=[r.as_warning() for r in asap7.full_deck()]
            )
            filtered = filter_violations_payload(
                local.payload(), severity="warning"
            )
        assert json.dumps(served["violations"], sort_keys=True) == json.dumps(
            filtered["violations"], sort_keys=True
        )

    def test_served_check_with_waivers_matches_local(self, dirty_gds, tmp_path, capsys):
        from repro.server import ServerState
        from repro.server.http import start_server

        markers = tmp_path / "markers.json"
        main(
            ["check", dirty_gds, "--top", "top", "--output", str(markers),
             "--format", "json"]
        )
        capsys.readouterr()
        waivers = tmp_path / "waivers.json"
        main(["waive", str(markers), "-o", str(waivers)])
        capsys.readouterr()

        state = ServerState()
        with start_server(state) as handle:
            served_code = main(
                ["check", dirty_gds, "--top", "top", "--server", handle.url,
                 "--waivers", str(waivers), "--format", "csv"]
            )
            served_out = capsys.readouterr().out
        local_code = main(
            ["check", dirty_gds, "--top", "top", "--waivers", str(waivers),
             "--format", "csv"]
        )
        local_out = capsys.readouterr().out
        assert served_out == local_out
        assert ",1," in served_out  # waived column set on some rows
        assert served_code == local_code == 0  # everything waived


# ---------------------------------------------------------------------------
# Incremental recheck with severities + waivers
# ---------------------------------------------------------------------------


class TestIncrementalLifecycle:
    def test_recheck_with_severities_and_waivers_matches_cold(self, tmp_path, capsys):
        """The PR 10 acceptance path, end to end through the CLI."""
        deck_path = tmp_path / "deck.py"
        deck_path.write_text(
            "from repro.workloads import asap7\n"
            "RULES = [asap7.spacing_rule(asap7.M2).as_warning(),\n"
            "         asap7.width_rule(asap7.M2)]\n"
        )
        old_path = tmp_path / "old.gds"
        write(gdsii_from_layout(build_design("uart")), old_path)
        new_layout = dirty_layout(seed=11)
        new_path = tmp_path / "new.gds"
        write(gdsii_from_layout(new_layout), new_path)

        markers = tmp_path / "markers.json"
        main(
            ["check", str(new_path), "--top", "top", "--deck", str(deck_path),
             "--output", str(markers), "--format", "json"]
        )
        capsys.readouterr()
        waivers = tmp_path / "waivers.json"
        main(["waive", str(markers), "-o", str(waivers), "--rule", "M2.W.1"])
        capsys.readouterr()

        code = main(
            ["recheck", str(old_path), str(new_path), "--top", "top",
             "--deck", str(deck_path), "--waivers", str(waivers),
             "--format", "csv"]
        )
        spliced_csv = capsys.readouterr().out
        cold_code = main(
            ["check", str(new_path), "--top", "top", "--deck", str(deck_path),
             "--waivers", str(waivers), "--format", "csv"]
        )
        cold_csv = capsys.readouterr().out
        assert spliced_csv == cold_csv
        # Spacing is warning-severity, width is fully waived: nothing blocks.
        assert code == cold_code == 0

    def test_check_window_applies_waivers(self, tmp_path, capsys):
        layout = Layout("w")
        top = layout.new_cell("top")
        top.add_polygon(1, Polygon.from_rect_coords(0, 0, 10, 100))
        top.add_polygon(1, Polygon.from_rect_coords(15, 0, 25, 100))
        layout.set_top("top")
        path = tmp_path / "w.gds"
        write(gdsii_from_layout(layout), path)
        deck_path = tmp_path / "deck.py"
        deck_path.write_text(
            "from repro.core.rules import layer\n"
            "RULES = [layer(1).spacing().greater_than(8).named('SP')]\n"
        )
        waivers = tmp_path / "wv.json"
        save_waivers([{"rule": "SP", "region": [0, 0, 100, 100]}], waivers)
        code = main(
            ["check-window", str(path), "0", "0", "100", "100",
             "--deck", str(deck_path), "--waivers", str(waivers)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1 violations, 1 waived" in out
