from repro.checks import (
    ViolationKind,
    check_ensures,
    check_polygon_rectilinear,
    check_rectilinear,
)
from repro.geometry import Polygon


class TestRectilinear:
    def test_rectilinear_passes(self):
        assert check_polygon_rectilinear(Polygon.from_rect_coords(0, 0, 5, 5), 1) == []

    def test_diagonal_flagged(self):
        # Built unvalidated, as a GDSII file with diagonal edges would be.
        bad = Polygon([(0, 0), (0, 10), (10, 14), (10, 0)], validate=False)
        violations = check_polygon_rectilinear(bad, 1)
        assert len(violations) == 1
        assert violations[0].kind is ViolationKind.SHAPE

    def test_collection(self):
        good = Polygon.from_rect_coords(0, 0, 5, 5)
        bad = Polygon([(10, 0), (10, 10), (20, 15), (20, 0)], validate=False)
        assert len(check_rectilinear([good, bad, good], 1)) == 1


class TestEnsures:
    def test_predicate_failures_flagged(self):
        named = Polygon.from_rect_coords(0, 0, 5, 5, name="pad")
        anonymous = Polygon.from_rect_coords(10, 0, 15, 5)
        violations = check_ensures([named, anonymous], 1, lambda p: bool(p.name))
        assert len(violations) == 1
        assert violations[0].kind is ViolationKind.PREDICATE
        assert violations[0].region == anonymous.mbr

    def test_all_pass(self):
        polys = [Polygon.from_rect_coords(0, 0, 5, 5)]
        assert check_ensures(polys, 1, lambda p: p.area == 25) == []

    def test_geometric_predicate(self):
        polys = [
            Polygon.from_rect_coords(0, 0, 5, 5),
            Polygon.from_rect_coords(10, 0, 40, 5),
        ]
        violations = check_ensures(polys, 1, lambda p: p.mbr.width <= 10)
        assert len(violations) == 1
