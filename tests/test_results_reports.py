import pytest

from repro.checks.base import Violation, ViolationKind
from repro.core.results import CheckReport, CheckResult, merge_reports
from repro.core.rules import layer
from repro.geometry import Rect


def violation(x=0, measured=5):
    return Violation(
        kind=ViolationKind.SPACING,
        layer=1,
        region=Rect(x, 0, x + 5, 10),
        measured=measured,
        required=10,
    )


def result(name="R", violations=(), seconds=0.01):
    rule = layer(1).spacing().greater_than(10).named(name)
    return CheckResult(rule=rule, violations=list(violations), seconds=seconds)


class TestCheckResult:
    def test_deduplicates_and_sorts(self):
        r = result(violations=[violation(100), violation(0), violation(0)])
        assert r.num_violations == 2
        assert r.violations[0].region.xlo == 0

    def test_passed(self):
        assert result().passed
        assert not result(violations=[violation()]).passed

    def test_str(self):
        assert "PASS" in str(result())
        assert "1 violations" in str(result(violations=[violation()]))

    def test_violation_region_must_be_nonempty(self):
        from repro.geometry import EMPTY_RECT

        with pytest.raises(ValueError):
            Violation(
                kind=ViolationKind.SPACING,
                layer=1,
                region=EMPTY_RECT,
                measured=1,
                required=2,
            )

    def test_violation_deficit_and_str(self):
        v = violation(measured=3)
        assert v.deficit == 7
        assert "3 < 10" in str(v)

    def test_violation_transforms(self):
        from repro.geometry import Transform

        v = violation()
        assert v.translated(10, 0).region.xlo == 10
        assert v.transformed(Transform(dx=5)).region.xlo == 5


class TestCheckReport:
    def test_totals(self):
        report = CheckReport(
            "demo", "sequential",
            [result("A", [violation()]), result("B", [], seconds=0.02)],
        )
        assert report.total_violations == 1
        assert report.total_seconds == pytest.approx(0.03)
        assert not report.passed

    def test_merge_reports(self):
        a = CheckReport("demo", "sequential", [result("A")])
        b = CheckReport("demo", "sequential", [result("B")])
        merged = merge_reports([a, b])
        assert [r.rule.name for r in merged.results] == ["A", "B"]

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_reports([])

    def test_csv_header_only_when_clean(self):
        report = CheckReport("demo", "sequential", [result("A")])
        assert report.to_csv().count("\n") == 0

    def test_csv_other_layer_blank(self):
        report = CheckReport("demo", "sequential", [result("A", [violation()])])
        line = report.to_csv().splitlines()[1]
        assert ",spacing,1,," in line


class TestMergeHelpers:
    def test_merge_stats_sums_key_union(self):
        from repro.core.results import merge_stats

        merged = merge_stats([{"a": 1, "b": 2}, {"b": 3, "c": 4}, {}])
        assert merged == {"a": 1, "b": 5, "c": 4}

    def test_combine_results_canonicalizes(self):
        from repro.core.results import combine_results

        a = result(violations=[violation(100)], seconds=0.01)
        b = result(violations=[violation(0), violation(100)], seconds=0.02)
        combined = combine_results([a, b])
        assert combined.num_violations == 2  # dedup across shards
        assert combined.violations[0].region.xlo == 0  # canonical order
        assert combined.seconds == pytest.approx(0.03)

    def test_combine_results_sums_stats(self):
        from repro.core.results import combine_results

        a = result()
        b = result()
        a.stats, b.stats = {"kernels": 2}, {"kernels": 3, "copies": 1}
        combined = combine_results([a, b])
        assert combined.stats == {"kernels": 5, "copies": 1}

    def test_combine_different_rules_rejected(self):
        from repro.core.results import combine_results

        with pytest.raises(ValueError, match="different rules"):
            combine_results([result("A"), result("B")])

    def test_merge_reports_combines_shards_of_one_rule(self):
        report_a = CheckReport("demo", "multiproc", [result("A", [violation(0)])])
        report_b = CheckReport("demo", "multiproc", [result("A", [violation(100)])])
        merged = merge_reports([report_a, report_b])
        assert [r.rule.name for r in merged.results] == ["A"]
        assert merged.total_violations == 2
