import pytest

from repro.checks.base import Violation, ViolationKind
from repro.core.results import CheckReport, CheckResult, merge_reports
from repro.core.rules import layer
from repro.geometry import Rect


def violation(x=0, measured=5):
    return Violation(
        kind=ViolationKind.SPACING,
        layer=1,
        region=Rect(x, 0, x + 5, 10),
        measured=measured,
        required=10,
    )


def result(name="R", violations=(), seconds=0.01):
    rule = layer(1).spacing().greater_than(10).named(name)
    return CheckResult(rule=rule, violations=list(violations), seconds=seconds)


class TestCheckResult:
    def test_deduplicates_and_sorts(self):
        r = result(violations=[violation(100), violation(0), violation(0)])
        assert r.num_violations == 2
        assert r.violations[0].region.xlo == 0

    def test_passed(self):
        assert result().passed
        assert not result(violations=[violation()]).passed

    def test_str(self):
        assert "PASS" in str(result())
        assert "1 violations" in str(result(violations=[violation()]))

    def test_violation_region_must_be_nonempty(self):
        from repro.geometry import EMPTY_RECT

        with pytest.raises(ValueError):
            Violation(
                kind=ViolationKind.SPACING,
                layer=1,
                region=EMPTY_RECT,
                measured=1,
                required=2,
            )

    def test_violation_deficit_and_str(self):
        v = violation(measured=3)
        assert v.deficit == 7
        assert "3 < 10" in str(v)

    def test_violation_transforms(self):
        from repro.geometry import Transform

        v = violation()
        assert v.translated(10, 0).region.xlo == 10
        assert v.transformed(Transform(dx=5)).region.xlo == 5


class TestCheckReport:
    def test_totals(self):
        report = CheckReport(
            "demo", "sequential",
            [result("A", [violation()]), result("B", [], seconds=0.02)],
        )
        assert report.total_violations == 1
        assert report.total_seconds == pytest.approx(0.03)
        assert not report.passed

    def test_merge_reports(self):
        a = CheckReport("demo", "sequential", [result("A")])
        b = CheckReport("demo", "sequential", [result("B")])
        merged = merge_reports([a, b])
        assert [r.rule.name for r in merged.results] == ["A", "B"]

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_reports([])

    def test_csv_header_only_when_clean(self):
        report = CheckReport("demo", "sequential", [result("A")])
        assert report.to_csv().count("\n") == 0

    def test_csv_other_layer_blank(self):
        report = CheckReport("demo", "sequential", [result("A", [violation()])])
        line = report.to_csv().splitlines()[1]
        assert ",spacing,1,," in line
