"""All five checkers must report identical violation sets.

This is the repository's strongest correctness statement: OpenDRC
sequential, OpenDRC parallel, KLayout-like flat/deep/tile, and X-Check all
share one violation vocabulary and must agree exactly — on clean designs,
on designs with injected violations, and on random layouts.
"""

import pytest

from repro.baselines import KLayoutLikeChecker, XCheckChecker
from repro.core import Engine
from repro.core.rules import layer
from repro.workloads import (
    InjectionPlan,
    asap7,
    build_design,
    inject_violations,
    random_hierarchical_layout,
    random_rect_layout,
)


def all_checker_sets(layout, rule):
    """Violation sets from every checker that supports the rule."""
    results = {}
    results["seq"] = (
        Engine(mode="sequential").check(layout, rules=[rule]).results[0].violation_set()
    )
    results["par"] = (
        Engine(mode="parallel").check(layout, rules=[rule]).results[0].violation_set()
    )
    for mode in ("flat", "deep", "tile"):
        violations, _ = KLayoutLikeChecker(layout, mode).run(rule)
        results[f"klayout-{mode}"] = frozenset(violations)
    xcheck = XCheckChecker(layout)
    if xcheck.supports(rule):
        violations, _ = xcheck.run(rule)
        results["xcheck"] = frozenset(violations)
    return results


def assert_all_agree(layout, rule, expected=None):
    results = all_checker_sets(layout, rule)
    reference = results["seq"]
    for name, got in results.items():
        assert got == reference, (
            f"{name} disagrees on {rule.name}: "
            f"only-in-{name}={got - reference}, missing={reference - got}"
        )
    if expected is not None:
        assert reference == frozenset(expected)


class TestCleanDesigns:
    @pytest.mark.parametrize(
        "rule",
        [
            asap7.width_rule(asap7.M1),
            asap7.spacing_rule(asap7.M1),
            asap7.spacing_rule(asap7.M2),
            asap7.area_rule(asap7.M3),
            asap7.enclosure_rule(asap7.V1, asap7.M1),
            asap7.enclosure_rule(asap7.V2, asap7.M3),
        ],
        ids=lambda r: r.name,
    )
    def test_uart_all_checkers_agree(self, uart_layout, rule):
        assert_all_agree(uart_layout, rule)


class TestInjectedViolations:
    def test_spacing_recall(self):
        layout = build_design("uart")
        expected = inject_violations(
            layout, InjectionPlan(spacing=5), layer=asap7.M2, seed=21
        )
        assert_all_agree(layout, asap7.spacing_rule(asap7.M2), expected)

    def test_width_recall(self):
        layout = build_design("uart")
        expected = inject_violations(
            layout, InjectionPlan(width=5), layer=asap7.M2, seed=22
        )
        assert_all_agree(layout, asap7.width_rule(asap7.M2), expected)

    def test_enclosure_recall(self):
        layout = build_design("uart")
        expected = inject_violations(
            layout,
            InjectionPlan(enclosure=5),
            via_layer=asap7.V2,
            metal_layer=asap7.M2,
            seed=23,
        )
        assert_all_agree(layout, asap7.enclosure_rule(asap7.V2, asap7.M2), expected)

    def test_area_recall_without_xcheck(self):
        layout = build_design("uart")
        expected = inject_violations(
            layout, InjectionPlan(area=5), layer=asap7.M2, seed=24
        )
        assert_all_agree(layout, asap7.area_rule(asap7.M2), expected)


class TestRandomLayouts:
    @pytest.mark.parametrize("seed", range(3))
    def test_flat_random_rects(self, seed):
        layout = random_rect_layout(120, extent=1500, seed=seed)
        assert_all_agree(layout, layer(1).spacing().greater_than(9))

    @pytest.mark.parametrize("seed", range(3))
    def test_hierarchical_random(self, seed):
        layout = random_hierarchical_layout(instances=40, seed=seed)
        assert_all_agree(layout, layer(1).spacing().greater_than(7))

    @pytest.mark.parametrize("seed", range(2))
    def test_hierarchical_width(self, seed):
        layout = random_hierarchical_layout(instances=30, seed=10 + seed)
        assert_all_agree(layout, layer(1).width().greater_than(8))
