from repro.geometry import Polygon, Rect
from repro.geometry.booleans import (
    decompose_rectilinear,
    polygons_area,
    union_polygons,
    union_rects,
)


class TestDecompose:
    def test_rectangle_is_itself(self):
        rect = Polygon.from_rect_coords(0, 0, 10, 4)
        assert decompose_rectilinear(rect) == [Rect(0, 0, 10, 4)]

    def test_l_shape_area_preserved(self):
        poly = Polygon([(0, 0), (0, 30), (10, 30), (10, 10), (25, 10), (25, 0)])
        rects = decompose_rectilinear(poly)
        assert sum(r.area for r in rects) == poly.area

    def test_pieces_are_disjoint(self):
        poly = Polygon([(0, 0), (0, 30), (10, 30), (10, 10), (25, 10), (25, 0)])
        rects = decompose_rectilinear(poly)
        for i, a in enumerate(rects):
            for b in rects[i + 1 :]:
                assert not a.overlaps_strictly(b)

    def test_u_shape(self):
        u = Polygon(
            [(0, 0), (0, 20), (5, 20), (5, 5), (15, 5), (15, 20), (20, 20), (20, 0)]
        )
        rects = decompose_rectilinear(u)
        assert sum(r.area for r in rects) == u.area


class TestUnionRects:
    def test_disjoint(self):
        u = union_rects([Rect(0, 0, 5, 5), Rect(10, 10, 15, 15)])
        assert u.area == 50 and u.region_count == 2

    def test_overlap_counted_once(self):
        u = union_rects([Rect(0, 0, 10, 10), Rect(5, 5, 15, 15)])
        assert u.area == 100 + 100 - 25
        assert u.region_count == 1

    def test_abutting_connects(self):
        u = union_rects([Rect(0, 0, 5, 5), Rect(5, 0, 9, 5)])
        assert u.region_count == 1 and u.area == 45

    def test_corner_touch_does_not_connect(self):
        u = union_rects([Rect(0, 0, 5, 5), Rect(5, 5, 9, 9)])
        assert u.region_count == 2

    def test_vertical_stacking_connects(self):
        u = union_rects([Rect(0, 0, 5, 5), Rect(0, 5, 5, 10)])
        assert u.region_count == 1 and u.area == 50

    def test_duplicate_rects(self):
        u = union_rects([Rect(0, 0, 5, 5)] * 3)
        assert u.area == 25 and u.region_count == 1

    def test_empty_input(self):
        u = union_rects([])
        assert u.area == 0 and u.region_count == 0

    def test_degenerate_ignored(self):
        u = union_rects([Rect(0, 0, 0, 5), Rect(1, 1, 2, 2)])
        assert u.area == 1 and u.region_count == 1

    def test_contains_point(self):
        u = union_rects([Rect(0, 0, 5, 5), Rect(10, 0, 15, 5)])
        assert u.contains_point(3, 3)
        assert u.contains_point(5, 5)  # boundary
        assert not u.contains_point(7, 3)

    def test_bridge_merges_regions(self):
        u = union_rects(
            [Rect(0, 0, 4, 10), Rect(8, 0, 12, 10), Rect(3, 4, 9, 6)]
        )
        assert u.region_count == 1


class TestUnionPolygons:
    def test_mixed_shapes(self):
        l_shape = Polygon([(0, 0), (0, 30), (10, 30), (10, 10), (25, 10), (25, 0)])
        square = Polygon.from_rect_coords(100, 100, 110, 110)
        u = union_polygons([l_shape, square])
        assert u.area == l_shape.area + 100
        assert u.region_count == 2

    def test_polygons_area_overlap(self):
        a = Polygon.from_rect_coords(0, 0, 10, 10)
        b = Polygon.from_rect_coords(5, 0, 15, 10)
        assert polygons_area([a, b]) == 150


class TestRegionAlgebra:
    def _regions(self):
        from repro.geometry.booleans import union_rects

        a = union_rects([Rect(0, 0, 10, 10)])
        b = union_rects([Rect(5, 5, 15, 15)])
        return a, b

    def test_intersection(self):
        from repro.geometry.booleans import intersect_regions

        a, b = self._regions()
        result = intersect_regions(a, b)
        assert result.area == 25 and result.region_count == 1
        assert result.contains_point(7, 7)
        assert not result.contains_point(2, 2)

    def test_subtraction(self):
        from repro.geometry.booleans import subtract_regions

        a, b = self._regions()
        result = subtract_regions(a, b)
        assert result.area == 75
        assert result.contains_point(2, 2)
        assert not result.contains_point(7, 7)

    def test_xor(self):
        from repro.geometry.booleans import xor_regions

        a, b = self._regions()
        assert xor_regions(a, b).area == 100 + 100 - 2 * 25

    def test_or_matches_union(self):
        from repro.geometry.booleans import or_regions, union_rects

        a, b = self._regions()
        direct = union_rects([Rect(0, 0, 10, 10), Rect(5, 5, 15, 15)])
        assert or_regions(a, b).area == direct.area

    def test_disjoint_intersection_empty(self):
        from repro.geometry.booleans import intersect_regions, union_rects

        a = union_rects([Rect(0, 0, 5, 5)])
        b = union_rects([Rect(50, 50, 55, 55)])
        assert intersect_regions(a, b).area == 0

    def test_empty_operand(self):
        from repro.geometry.booleans import subtract_regions, union_rects

        a = union_rects([Rect(0, 0, 5, 5)])
        empty = union_rects([])
        assert subtract_regions(a, empty).area == 25
        assert subtract_regions(empty, a).area == 0

    def test_not_cut_between_layers(self):
        """The paper's intro example: the NOT CUT result between layers."""
        from repro.geometry.booleans import subtract_regions, union_polygons

        metal = [Polygon.from_rect_coords(0, 0, 100, 20)]
        cut = [Polygon.from_rect_coords(40, 5, 60, 15)]
        not_cut = subtract_regions(union_polygons(metal), union_polygons(cut))
        assert not_cut.area == 100 * 20 - 20 * 10
        assert not_cut.contains_point(10, 10)
        assert not not_cut.contains_point(50, 10)

    def test_self_subtraction_empty(self):
        from repro.geometry.booleans import subtract_regions

        a, _ = self._regions()
        assert subtract_regions(a, a).area == 0
