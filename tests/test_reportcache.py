"""ReportCache contention coverage: atomic writes must mean atomic reads.

PR 7 claimed tmp+``os.replace`` makes report persistence safe under
concurrency; these tests actually race writers against writers and readers
against half-written files. The contract: ``load`` either returns a report
byte-identical to one *complete* ``save`` or misses — never a corrupt hit.
"""

import json
import os
import threading

from repro.checks.base import Violation, ViolationKind
from repro.core.packstore import PackStore
from repro.core.reportcache import ReportCache, deck_digest, report_key
from repro.core.results import CheckReport, CheckResult
from repro.core.rules import layer
from repro.geometry import Rect


def _deck():
    return [layer(19).width().greater_than(18).named("W19")]


def _report(variant: int):
    """A report whose violations identify which writer produced it."""
    rule = _deck()[0]
    violations = [
        Violation(
            kind=ViolationKind.WIDTH,
            layer=19,
            region=Rect(variant * 100, 0, variant * 100 + 10, 10),
            measured=variant,
            required=18,
        )
    ]
    result = CheckResult(rule=rule, violations=violations, seconds=0.001)
    return CheckReport("uart", "sequential", [result])


class TestReportCacheBasics:
    def test_roundtrip(self, tmp_path):
        cache = ReportCache(PackStore(str(tmp_path)))
        key = report_key(deck_digest(_deck()), {19: "abc"})
        assert cache.load(key, _deck()) is None
        cache.save(key, _report(3))
        loaded = cache.load(key, _deck())
        assert loaded is not None
        assert loaded.to_csv() == _report(3).to_csv()

    def test_entries_bytes_and_clear(self, tmp_path):
        store = PackStore(str(tmp_path))
        cache = ReportCache(store)
        assert cache.entries() == []
        assert cache.total_bytes() == 0
        for i in range(3):
            cache.save(report_key(deck_digest(_deck()), {19: f"v{i}"}), _report(i))
        entries = cache.entries()
        assert len(entries) == 3
        assert cache.total_bytes() == sum(nbytes for _, nbytes in entries)
        assert all(nbytes > 0 for _, nbytes in entries)
        assert cache.clear() == 3
        assert cache.entries() == []
        # clear() on an already-empty (or never-created) directory is a no-op
        assert cache.clear() == 0

    def test_half_written_entry_is_a_miss_not_a_crash(self, tmp_path):
        cache = ReportCache(PackStore(str(tmp_path)))
        key = report_key(deck_digest(_deck()), {19: "abc"})
        os.makedirs(cache.root, exist_ok=True)
        full = _report(1).to_json(indent=None)
        for truncated in (full[: len(full) // 2], "", "{", '{"results": 7}'):
            with open(cache._path(key), "w", encoding="utf-8") as fh:
                fh.write(truncated)
            assert cache.load(key, _deck()) is None
        # A subsequent good save repairs the entry.
        cache.save(key, _report(1))
        assert cache.load(key, _deck()) is not None


class TestReportCacheContention:
    def test_racing_writers_same_key(self, tmp_path):
        """N writers hammering one key: the file is always one whole report."""
        cache = ReportCache(PackStore(str(tmp_path)))
        key = report_key(deck_digest(_deck()), {19: "abc"})
        valid_csvs = {_report(v).to_csv() for v in range(4)}
        rounds = 25
        start = threading.Barrier(4)

        def writer(variant: int):
            start.wait(10)
            for _ in range(rounds):
                cache.save(key, _report(variant))

        threads = [threading.Thread(target=writer, args=(v,)) for v in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        loaded = cache.load(key, _deck())
        assert loaded is not None
        assert loaded.to_csv() in valid_csvs
        # No stray tmp files leaked by the racing writers' os.replace calls.
        leftovers = [n for n in os.listdir(cache.root) if n.endswith(".tmp")]
        assert leftovers == []

    def test_reader_racing_writers_never_sees_corruption(self, tmp_path):
        """Concurrent loads during a write storm: every hit is one variant."""
        cache = ReportCache(PackStore(str(tmp_path)))
        key = report_key(deck_digest(_deck()), {19: "abc"})
        valid_csvs = {_report(v).to_csv() for v in range(3)}
        stop = threading.Event()
        bad_hits = []
        hits = []

        def writer(variant: int):
            while not stop.is_set():
                cache.save(key, _report(variant))

        def reader():
            local = ReportCache(PackStore(str(tmp_path)))
            while not stop.is_set():
                loaded = local.load(key, _deck())
                if loaded is None:
                    continue  # a miss is allowed; corruption is not
                hits.append(1)
                if loaded.to_csv() not in valid_csvs:
                    bad_hits.append(loaded.to_csv())
                    return

        writers = [threading.Thread(target=writer, args=(v,)) for v in range(3)]
        readers = [threading.Thread(target=reader) for _ in range(3)]
        for t in writers + readers:
            t.start()
        # Let the storm run briefly, then stop everyone.
        threading.Event().wait(1.0)
        stop.set()
        for t in writers + readers:
            t.join(30)
        assert bad_hits == []
        assert hits  # the race actually produced hits, not a vacuous pass

    def test_direct_json_of_saved_file_is_complete(self, tmp_path):
        """After any save the on-disk bytes parse as the full report schema."""
        cache = ReportCache(PackStore(str(tmp_path)))
        key = report_key(deck_digest(_deck()), {19: "abc"})
        cache.save(key, _report(2))
        with open(cache._path(key), "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        assert set(payload) >= {"layout", "mode", "results", "total_violations"}
        assert payload["results"][0]["rule"] == "W19"
