import pytest

from repro.cli import main
from repro.gdsii import write
from repro.layout import gdsii_from_layout
from repro.workloads import InjectionPlan, asap7, build_design, inject_violations


@pytest.fixture()
def uart_gds(tmp_path):
    path = tmp_path / "uart.gds"
    write(gdsii_from_layout(build_design("uart")), path)
    return str(path)


@pytest.fixture()
def dirty_gds(tmp_path):
    layout = build_design("uart")
    inject_violations(layout, InjectionPlan(spacing=2), layer=asap7.M2, seed=1)
    path = tmp_path / "dirty.gds"
    write(gdsii_from_layout(layout), path)
    return str(path)


class TestCheckCommand:
    def test_clean_design_exit_zero(self, uart_gds, capsys):
        code = main(["check", uart_gds, "--top", "top"])
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "M1.S.1" in out

    def test_dirty_design_exit_one(self, dirty_gds, capsys):
        code = main(["check", dirty_gds, "--top", "top"])
        assert code == 1
        assert "violations" in capsys.readouterr().out

    def test_parallel_mode(self, uart_gds):
        assert main(["check", uart_gds, "--top", "top", "--mode", "parallel"]) == 0

    def test_csv_output(self, dirty_gds, capsys):
        main(["check", dirty_gds, "--top", "top", "--csv"])
        out = capsys.readouterr().out
        assert out.startswith("rule,kind")
        assert "spacing" in out

    def test_breakdown_output(self, uart_gds, capsys):
        main(["check", uart_gds, "--top", "top", "--breakdown"])
        out = capsys.readouterr().out
        assert "edge-checks" in out

    def test_custom_deck(self, uart_gds, tmp_path, capsys):
        deck = tmp_path / "deck.py"
        deck.write_text(
            "from repro.core.rules import layer\n"
            "RULES = [layer(19).width().greater_than(18).named('ONLY')]\n"
        )
        assert main(["check", uart_gds, "--top", "top", "--deck", str(deck)]) == 0
        out = capsys.readouterr().out
        assert "ONLY" in out and "M1.S.1" not in out

    def test_bad_deck_rejected(self, uart_gds, tmp_path):
        deck = tmp_path / "deck.py"
        deck.write_text("RULES = 'not a list'\n")
        with pytest.raises(SystemExit):
            main(["check", uart_gds, "--deck", str(deck)])


class TestBackendFlags:
    def test_parallel_knobs_accepted(self, uart_gds):
        code = main([
            "check", uart_gds, "--top", "top", "--mode", "parallel",
            "--num-streams", "3", "--brute-force-threshold", "0",
        ])
        assert code == 0

    def test_no_fuse_rows_ablation(self, uart_gds):
        code = main([
            "check", uart_gds, "--top", "top", "--mode", "parallel",
            "--no-fuse-rows",
        ])
        assert code == 0

    def test_fuse_rows_flags_conflict(self, uart_gds, capsys):
        with pytest.raises(SystemExit):
            main(["check", uart_gds, "--fuse-rows", "--no-fuse-rows"])

    def test_invalid_num_streams_rejected(self, uart_gds, capsys):
        with pytest.raises(SystemExit, match="num_streams"):
            main(["check", uart_gds, "--top", "top", "--num-streams", "0"])

    def test_invalid_threshold_rejected(self, uart_gds):
        with pytest.raises(SystemExit, match="brute_force_threshold"):
            main([
                "check", uart_gds, "--top", "top",
                "--brute-force-threshold", "-5",
            ])


class TestCheckWindowCommand:
    def test_clean_window_exit_zero(self, uart_gds, capsys):
        code = main(["check-window", uart_gds, "0", "0", "2000", "2000", "--top", "top"])
        assert code == 0
        out = capsys.readouterr().out
        assert "windowed" in out and "PASS" in out

    def test_dirty_window_exit_one(self, dirty_gds, capsys):
        code = main([
            "check-window", dirty_gds,
            "-100000", "-100000", "100000", "100000", "--top", "top",
        ])
        assert code == 1
        assert "violations" in capsys.readouterr().out

    def test_window_away_from_violations_passes(self, dirty_gds):
        # The injected scratch strip sits above the core rows.
        assert main([
            "check-window", dirty_gds, "0", "0", "400", "400", "--top", "top",
        ]) == 0

    def test_empty_window_rejected(self, uart_gds):
        with pytest.raises(SystemExit, match="non-empty"):
            main(["check-window", uart_gds, "100", "100", "50", "900", "--top", "top"])

    def test_csv_output(self, dirty_gds, capsys):
        main([
            "check-window", dirty_gds,
            "-100000", "-100000", "100000", "100000", "--top", "top", "--csv",
        ])
        assert capsys.readouterr().out.startswith("rule,kind")


class TestStatsCommand:
    def test_stats(self, uart_gds, capsys):
        assert main(["stats", uart_gds, "--top", "top"]) == 0
        out = capsys.readouterr().out
        assert "cells" in out and "flat polygons" in out


class TestSynthCommand:
    def test_synth_round_trip(self, tmp_path, capsys):
        out_path = tmp_path / "ibex.gds"
        assert main(["synth", "ibex", str(out_path)]) == 0
        assert out_path.exists() and out_path.stat().st_size > 1000
        assert main(["stats", str(out_path), "--top", "top"]) == 0

    def test_unknown_design_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["synth", "riscv", str(tmp_path / "x.gds")])


class TestMarkerOutput:
    def test_output_marker_database(self, dirty_gds, tmp_path, capsys):
        out = tmp_path / "markers.json"
        code = main(["check", dirty_gds, "--top", "top", "--output", str(out)])
        assert code == 1 and out.exists()
        from repro.core.markers import load_markers

        report = load_markers(out)
        assert report.total_violations == 2


class TestWaiverFlag:
    def test_waivers_applied(self, dirty_gds, tmp_path, capsys):
        import json

        waiver_path = tmp_path / "waivers.json"
        waiver_path.write_text(json.dumps({
            "format": 1,
            "waivers": [{"rule": "*", "region": [-10**9, -10**9, 10**9, 10**9]}],
        }))
        code = main(["check", dirty_gds, "--top", "top", "--waivers", str(waiver_path)])
        assert code == 0  # everything waived -> clean exit


class TestJobsFlag:
    def test_jobs_flag_selects_multiproc(self, dirty_gds, capsys):
        code = main(["check", dirty_gds, "--top", "top", "--jobs", "2"])
        assert code == 1
        assert "multiproc" in capsys.readouterr().out

    def test_short_flag(self, uart_gds):
        assert main(["check", uart_gds, "--top", "top", "-j", "2"]) == 0

    def test_explicit_mode_wins_over_jobs_default(self, uart_gds, capsys):
        main(["check", uart_gds, "--top", "top", "--mode", "parallel", "-j", "2"])
        assert "parallel" in capsys.readouterr().out

    def test_env_fallback(self, uart_gds, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert main(["check", uart_gds, "--top", "top"]) == 0
        assert "multiproc" in capsys.readouterr().out

    def test_flag_wins_over_env(self, uart_gds, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        main(["check", uart_gds, "--top", "top", "--jobs", "1"])
        assert "sequential" in capsys.readouterr().out

    def test_bad_env_rejected(self, uart_gds, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(SystemExit, match="REPRO_JOBS"):
            main(["check", uart_gds, "--top", "top"])

    def test_zero_jobs_rejected(self, uart_gds):
        with pytest.raises(SystemExit, match="positive integer"):
            main(["check", uart_gds, "--top", "top", "--jobs", "0"])

    def test_negative_jobs_rejected(self, uart_gds):
        with pytest.raises(SystemExit, match="positive integer"):
            main(["check", uart_gds, "--top", "top", "--jobs", "-3"])

    def test_negative_env_jobs_rejected(self, uart_gds, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "-2")
        with pytest.raises(SystemExit, match="REPRO_JOBS"):
            main(["check", uart_gds, "--top", "top"])

    def test_check_window_jobs(self, dirty_gds, capsys):
        code = main([
            "check-window", dirty_gds,
            "-100000", "-100000", "100000", "100000",
            "--top", "top", "--jobs", "2",
        ])
        assert code == 1
        assert "violations" in capsys.readouterr().out

    def test_check_window_zero_jobs_rejected(self, uart_gds):
        with pytest.raises(SystemExit, match="positive integer"):
            main([
                "check-window", uart_gds, "0", "0", "100", "100",
                "--top", "top", "--jobs", "0",
            ])


class TestFaultToleranceFlags:
    def test_knobs_accepted(self, uart_gds):
        code = main([
            "check", uart_gds, "--top", "top",
            "--task-timeout", "30", "--max-retries", "1",
        ])
        assert code == 0

    def test_zero_task_timeout_rejected(self, uart_gds):
        with pytest.raises(SystemExit, match="task_timeout"):
            main(["check", uart_gds, "--top", "top", "--task-timeout", "0"])

    def test_negative_max_retries_rejected(self, uart_gds):
        with pytest.raises(SystemExit, match="max_retries"):
            main(["check", uart_gds, "--top", "top", "--max-retries", "-1"])

    def test_check_window_rejects_bad_knobs(self, uart_gds):
        with pytest.raises(SystemExit, match="task_timeout"):
            main([
                "check-window", uart_gds, "0", "0", "100", "100",
                "--top", "top", "--task-timeout", "-5",
            ])

    def test_env_faults_do_not_change_the_report(self, dirty_gds, capsys, monkeypatch):
        from repro.util import faults

        code = main(["check", dirty_gds, "--top", "top", "--jobs", "2", "--csv"])
        clean = capsys.readouterr().out
        faults.clear()
        monkeypatch.setenv(
            "REPRO_FAULTS", "worker_raise:times=1;worker_hang:times=1"
        )
        try:
            faulted_code = main([
                "check", dirty_gds, "--top", "top", "--jobs", "2", "--csv",
                "--task-timeout", "5",
            ])
        finally:
            faults.clear()
        assert faulted_code == code
        assert capsys.readouterr().out == clean


@pytest.fixture()
def edited_gds_pair(tmp_path):
    """(old, new) GDS paths: new has one extra skinny M1 wire in the top."""
    from repro.geometry import Polygon, Rect

    old = build_design("uart")
    old_path = tmp_path / "old.gds"
    write(gdsii_from_layout(old), old_path)
    new = build_design("uart")
    new.top_cell().add_polygon(19, Polygon.from_rect(Rect(40, 40, 52, 90)))
    new_path = tmp_path / "new.gds"
    write(gdsii_from_layout(new), new_path)
    return str(old_path), str(new_path)


class TestJsonFormat:
    def test_check_format_json(self, dirty_gds, capsys):
        import json

        main(["check", dirty_gds, "--top", "top", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_violations"] > 0
        assert {"rule", "kind", "layer", "violations"} <= set(
            payload["results"][0]
        )

    def test_check_window_format_json(self, dirty_gds, capsys):
        import json

        main([
            "check-window", dirty_gds,
            "-100000", "-100000", "100000", "100000",
            "--top", "top", "--format", "json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "windowed"


class TestMultiWindowCli:
    def test_extra_windows_coalesce(self, dirty_gds, capsys):
        code = main([
            "check-window", dirty_gds, "0", "0", "400", "400",
            "--window", "0", "300", "400", "700",
            "--top", "top",
        ])
        assert code == 0  # both windows inside the clean core
        assert "windowed" in capsys.readouterr().out

    def test_extra_window_reaches_violations(self, dirty_gds):
        code = main([
            "check-window", dirty_gds, "0", "0", "400", "400",
            "--window", "-100000", "-100000", "100000", "100000",
            "--top", "top",
        ])
        assert code == 1

    def test_empty_extra_window_rejected(self, uart_gds):
        with pytest.raises(SystemExit, match="non-empty"):
            main([
                "check-window", uart_gds, "0", "0", "400", "400",
                "--window", "100", "100", "50", "900",
                "--top", "top",
            ])


class TestRecheckCommand:
    def test_recheck_with_cache(self, edited_gds_pair, tmp_path, capsys):
        old, new = edited_gds_pair
        cache = str(tmp_path / "cache")
        assert main(["check", old, "--top", "top", "--cache-dir", cache]) == 0
        capsys.readouterr()
        code = main([
            "recheck", old, new, "--top", "top", "--cache-dir", cache,
            "--verify",
        ])
        out = capsys.readouterr().out
        assert code == 1  # the skinny wire violates width/area
        assert "baseline: report cache" in out
        assert "windowed" in out
        assert "verify: spliced report matches the cold full check" in out

    def test_recheck_cold_without_cache(self, edited_gds_pair, capsys):
        old, new = edited_gds_pair
        code = main(["recheck", old, new, "--top", "top"])
        out = capsys.readouterr().out
        assert code == 1
        assert "cold" in out

    def test_recheck_clean_pair(self, uart_gds, capsys):
        code = main(["recheck", uart_gds, uart_gds, "--top", "top"])
        out = capsys.readouterr().out
        # identical files: with no cache the baseline is computed cold
        assert "diff: clean" in out
        assert code == 0

    def test_recheck_csv_format(self, edited_gds_pair, tmp_path, capsys):
        old, new = edited_gds_pair
        cache = str(tmp_path / "cache")
        main(["check", old, "--top", "top", "--cache-dir", cache])
        capsys.readouterr()
        main([
            "recheck", old, new, "--top", "top", "--cache-dir", cache,
            "--format", "csv",
        ])
        out = capsys.readouterr().out
        assert out.startswith("rule,kind")
