from repro.geometry import Interval, coalesce


class TestInterval:
    def test_of_orders_endpoints(self):
        assert Interval.of(9, 2) == Interval(2, 9)

    def test_length(self):
        assert Interval(2, 9).length == 7

    def test_contains(self):
        iv = Interval(2, 9)
        assert iv.contains(2) and iv.contains(9) and not iv.contains(10)

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(3, 7))
        assert not Interval(0, 10).contains_interval(Interval(3, 11))

    def test_overlaps_closed(self):
        assert Interval(0, 5).overlaps(Interval(5, 9))
        assert not Interval(0, 5).overlaps(Interval(6, 9))

    def test_overlap_length(self):
        assert Interval(0, 10).overlap_length(Interval(5, 20)) == 5
        assert Interval(0, 5).overlap_length(Interval(5, 9)) == 0

    def test_gap_to(self):
        assert Interval(0, 5).gap_to(Interval(9, 12)) == 4
        assert Interval(0, 5).gap_to(Interval(5, 12)) == 0
        assert Interval(0, 5).gap_to(Interval(3, 12)) == 0

    def test_union(self):
        assert Interval(0, 5).union(Interval(9, 12)) == Interval(0, 12)

    def test_inflated(self):
        assert Interval(3, 5).inflated(2) == Interval(1, 7)


class TestCoalesce:
    def test_merges_overlapping(self):
        assert coalesce([Interval(0, 5), Interval(3, 9)]) == [Interval(0, 9)]

    def test_merges_touching(self):
        assert coalesce([Interval(0, 5), Interval(5, 9)]) == [Interval(0, 9)]

    def test_keeps_disjoint(self):
        result = coalesce([Interval(6, 9), Interval(0, 5)])
        assert result == [Interval(0, 5), Interval(6, 9)]

    def test_empty_input(self):
        assert coalesce([]) == []

    def test_nested_absorbed(self):
        assert coalesce([Interval(0, 10), Interval(2, 3)]) == [Interval(0, 10)]
