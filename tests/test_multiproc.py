"""Process-parallel backend: equivalence, determinism, transport, lifecycle.

The tentpole property: the multiprocess backend must report the *same
canonical violation list* as the sequential checker and the in-process
fused backend, for every rule kind, at every worker count — shard
scheduling and pool nondeterminism must be invisible in the report.
"""

import multiprocessing
import random
from collections import Counter

import numpy as np
import pytest

from repro.core import (
    Engine,
    EngineOptions,
    MultiprocessBackend,
    check_window,
    compile_plan,
    make_backend,
)
from repro.core.rules import layer, polygons
from repro.geometry import Polygon, Rect, Transform
from repro.gpu.shmem import INLINE_THRESHOLD, ShmArena
from repro.layout import CellReference, Layout
from repro.workloads import asap7, random_hierarchical_layout


def random_via_layout(seed: int, *, kinds: int = 3, instances: int = 30) -> Layout:
    """Random hierarchical metal (layer 1) + via (layer 2) layout."""
    rng = random.Random(seed)
    layout = Layout(f"mp-vias-{seed}")
    for kind in range(kinds):
        leaf = layout.new_cell(f"leaf_{kind}")
        for _ in range(rng.randint(1, 4)):
            x, y = rng.randint(0, 120), rng.randint(0, 120)
            w, h = rng.randint(14, 36), rng.randint(14, 36)
            leaf.add_polygon(1, Polygon.from_rect_coords(x, y, x + w, y + h))
            margin = rng.randint(0, 5)
            leaf.add_polygon(
                2,
                Polygon.from_rect_coords(
                    x + margin, y + margin, x + margin + 4, y + margin + 4
                ),
            )
    top = layout.new_cell("top")
    for _ in range(instances):
        top.add_reference(
            CellReference(
                f"leaf_{rng.randrange(kinds)}",
                Transform(
                    dx=rng.randint(0, 4000),
                    dy=rng.randint(0, 4000),
                    rotation=rng.choice((0, 90, 180, 270)),
                    mirror_x=rng.random() < 0.5,
                ),
            )
        )
    layout.set_top("top")
    return layout


def _narrow(polygon):
    """Module-level predicate: picklable, so it ships to the workers."""
    return polygon.mbr.width <= 400


def _boom(polygon):
    raise RuntimeError("boom in worker")


#: One rule of every kind the engine executes, on the metal+via layout.
def every_kind_deck():
    return [
        polygons().is_rectilinear().named("RECT"),
        layer(1).polygons().ensures(_narrow).named("ENS"),
        layer(1).width().greater_than(8).named("W"),
        layer(1).area().greater_than(400).named("A"),
        layer(1).spacing().greater_than(7).named("S"),
        layer(1).corner_spacing().greater_than(6).named("CS"),
        layer(1).same_mask_spacing().greater_than(9).named("DP"),
        layer(2).enclosure(layer(1)).greater_than(3).named("ENC"),
        layer(2).overlap(layer(1)).greater_than(10).named("OVL"),
    ]


def run(layout, rules, *, jobs, **kw):
    options = EngineOptions(mode="multiproc", jobs=jobs, **kw)
    return Engine(options=options).check(layout, rules=rules)


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(2))
    def test_every_rule_kind(self, seed):
        layout = random_via_layout(200 + seed)
        deck = every_kind_deck()
        reference = Engine(mode="sequential").check(layout, rules=deck)
        multiproc = run(layout, deck, jobs=2)
        for ref, got in zip(reference.results, multiproc.results):
            assert Counter(got.violations) == Counter(ref.violations), (
                f"multiproc disagrees on {ref.rule.name}"
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_spacing_random_hierarchical(self, seed):
        layout = random_hierarchical_layout(instances=40, seed=120 + seed)
        rule = layer(1).spacing().greater_than(7)
        reference = Engine(mode="sequential").check(layout, rules=[rule])
        multiproc = run(layout, [rule], jobs=3)
        assert Counter(multiproc.results[0].violations) == Counter(
            reference.results[0].violations
        )

    def test_full_deck_uart_matches_simulated_gpu(self, uart_layout):
        deck = asap7.full_deck()
        gpu = Engine(mode="parallel").check(uart_layout, rules=deck)
        multiproc = run(uart_layout, deck, jobs=2)
        for ref, got in zip(gpu.results, multiproc.results):
            assert got.violations == ref.violations, ref.rule.name

    def test_lambda_predicate_runs_inline(self):
        # A lambda cannot cross the process boundary; the pickle probe must
        # route it to the in-process backend, not crash the pool.
        layout = random_via_layout(42)
        deck = [
            layer(1).polygons().ensures(lambda p: p.mbr.width <= 400).named("L"),
            layer(1).spacing().greater_than(7).named("S"),
        ]
        reference = Engine(mode="sequential").check(layout, rules=deck)
        multiproc = run(layout, deck, jobs=2)
        for ref, got in zip(reference.results, multiproc.results):
            assert Counter(got.violations) == Counter(ref.violations)

    def test_windowed_jobs_match_plain_window(self, uart_layout):
        deck = asap7.spacing_deck()
        window = Rect(0, 0, 3000, 3000)
        plain = check_window(uart_layout, window, rules=deck)
        jobs2 = check_window(
            uart_layout, window, rules=deck, options=EngineOptions(jobs=2)
        )
        assert jobs2.mode == "windowed"
        for ref, got in zip(plain.results, jobs2.results):
            assert got.violations == ref.violations, ref.rule.name


class TestDeterminism:
    def test_reports_identical_across_worker_counts(self):
        layout = random_via_layout(7, instances=40)
        deck = every_kind_deck()
        baseline = run(layout, deck, jobs=1).to_csv()
        for jobs in (2, 4):
            assert run(layout, deck, jobs=jobs).to_csv() == baseline, jobs

    def test_repeated_runs_identical(self):
        layout = random_hierarchical_layout(instances=30, seed=9)
        deck = [layer(1).spacing().greater_than(7)]
        first = run(layout, deck, jobs=2)
        second = run(layout, deck, jobs=2)
        # Equal as plain lists: the canonical sort makes shard order moot.
        assert first.results[0].violations == second.results[0].violations

    def test_violation_lists_equal_not_just_multisets(self):
        layout = random_hierarchical_layout(instances=40, seed=13)
        deck = [layer(1).spacing().greater_than(7)]
        seq = Engine(mode="sequential").check(layout, rules=deck)
        mp = run(layout, deck, jobs=4)
        assert mp.results[0].violations == seq.results[0].violations


class TestWorkerLifecycle:
    def test_raising_rule_propagates_and_pool_shuts_down(self):
        layout = random_via_layout(3, instances=5)
        deck = [layer(1).polygons().ensures(_boom).named("BOOM")]
        engine = Engine(options=EngineOptions(mode="multiproc", jobs=2))
        with pytest.raises(RuntimeError, match="boom in worker"):
            engine.check(layout, rules=deck)
        # The engine's finally-close must leave no worker processes behind.
        for child in multiprocessing.active_children():
            child.join(timeout=10)
        assert multiprocessing.active_children() == []

    def test_close_is_idempotent(self):
        layout = random_via_layout(4, instances=5)
        plan = compile_plan(
            layout,
            [layer(1).spacing().greater_than(7)],
            EngineOptions(mode="multiproc", jobs=2),
        )
        backend = make_backend(plan)
        assert isinstance(backend, MultiprocessBackend)
        backend.run(plan.compiled[0].rule)
        backend.close()
        backend.close()
        for child in multiprocessing.active_children():
            child.join(timeout=10)
        assert multiprocessing.active_children() == []

    def test_jobs_one_never_starts_a_pool(self):
        layout = random_via_layout(5, instances=5)
        plan = compile_plan(
            layout,
            [layer(1).spacing().greater_than(7)],
            EngineOptions(mode="multiproc", jobs=1),
        )
        backend = make_backend(plan)
        backend.prefetch()
        backend.run(plan.compiled[0].rule)
        assert backend._pool is None
        backend.close()

    def test_spawn_start_method(self):
        layout = random_via_layout(6, instances=8)
        deck = [layer(1).spacing().greater_than(7)]
        reference = Engine(mode="sequential").check(layout, rules=deck)
        spawned = run(layout, deck, jobs=2, mp_start_method="spawn")
        assert spawned.results[0].violations == reference.results[0].violations


class TestStats:
    def test_mp_counters_exposed(self, uart_layout):
        deck = [asap7.spacing_rule(asap7.M3), asap7.width_rule(asap7.M2)]
        report = run(uart_layout, deck, jobs=2)
        stats = report.results[-1].stats
        assert stats["mp_jobs"] == 2
        assert stats["mp_shard_tasks"] > 0  # M3 spacing rode the row shards
        assert stats["mp_rule_tasks"] > 0  # width rode a rule task
        assert "mp_shm_bytes" in stats

    def test_shared_memory_carries_large_buffers(self):
        # Big enough that the packed edge arrays clear the inline threshold.
        layout = random_hierarchical_layout(instances=120, seed=2)
        deck = [layer(1).spacing().greater_than(7)]
        report = run(layout, deck, jobs=2)
        reference = Engine(mode="sequential").check(layout, rules=deck)
        assert report.results[0].violations == reference.results[0].violations
        assert report.results[0].stats["mp_shm_bytes"] > 0

    def test_inline_transport_when_shm_disabled(self, uart_layout, monkeypatch):
        monkeypatch.setenv("REPRO_MP_SHM", "0")
        deck = [asap7.spacing_rule(asap7.M2)]
        report = run(uart_layout, deck, jobs=2)
        reference = Engine(mode="sequential").check(uart_layout, rules=deck)
        assert report.results[0].violations == reference.results[0].violations
        assert report.results[0].stats["mp_shm_bytes"] == 0


class TestOptions:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            EngineOptions(jobs=0)

    def test_bad_start_method_rejected(self):
        with pytest.raises(ValueError, match="mp_start_method"):
            EngineOptions(mp_start_method="warp")

    def test_multiproc_mode_registered(self):
        layout = random_via_layout(8, instances=3)
        plan = compile_plan(
            layout,
            [layer(1).width().greater_than(8)],
            EngineOptions(mode="multiproc", jobs=2),
        )
        assert plan.mode == "multiproc"
        backend = make_backend(plan)
        assert isinstance(backend, MultiprocessBackend)
        backend.close()


class TestShmArena:
    def test_round_trip(self):
        arena = ShmArena()
        big = np.arange(4096, dtype=np.int64)
        small = np.array([1, 2, 3], dtype=np.int32)
        matrix = np.arange(600, dtype=np.int64).reshape(150, 4)
        refs = [arena.stage(big), arena.stage(small), arena.stage(matrix)]
        arena.seal()
        try:
            for ref, original in zip(refs, (big, small, matrix)):
                resolved = ref.resolve()
                np.testing.assert_array_equal(resolved, original)
                assert not resolved.flags.writeable
                del resolved  # views must die before the block is unmapped
        finally:
            arena.dispose()
        from repro.gpu.shmem import release_attachments

        release_attachments()

    def test_small_arrays_inline(self):
        arena = ShmArena()
        ref = arena.stage(np.arange(4, dtype=np.int64))  # 32 bytes < threshold
        assert ref.block is None and ref.data is not None
        assert arena.nbytes == 0
        arena.seal()
        arena.dispose()

    def test_disabled_env_inlines_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_SHM", "0")
        arena = ShmArena()
        big = np.arange(4096, dtype=np.int64)
        assert big.nbytes >= INLINE_THRESHOLD
        ref = arena.stage(big)
        assert ref.block is None and ref.data is not None
        np.testing.assert_array_equal(ref.resolve(), big)
        arena.seal()
        arena.dispose()

    def test_stage_after_seal_rejected(self):
        arena = ShmArena()
        arena.seal()
        with pytest.raises(RuntimeError, match="sealed"):
            arena.stage(np.zeros(1))
        arena.dispose()

    def test_refs_pickle_small(self):
        import pickle

        arena = ShmArena()
        ref = arena.stage(np.arange(100_000, dtype=np.int64))
        arena.seal()
        try:
            # The point of the arena: the descriptor is tiny vs. the data.
            assert len(pickle.dumps(ref)) < 1024
            resolved = ref.resolve()
            np.testing.assert_array_equal(resolved, np.arange(100_000, dtype=np.int64))
            del resolved  # views must die before the block is unmapped
        finally:
            arena.dispose()
            from repro.gpu.shmem import release_attachments

            release_attachments()


class TestMappedFileCache:
    def test_in_place_rewrite_is_remapped(self, tmp_path):
        # Pack-store entries are immutable, but file_backed_ref accepts any
        # memmap-backed array — a path rewritten in place at the *same*
        # size must not serve stale cached pages.
        import os

        from repro.gpu.shmem import ArrayRef, release_attachments

        path = str(tmp_path / "data.bin")
        first = np.arange(64, dtype=np.int64)
        with open(path, "wb") as handle:
            handle.write(first.tobytes())
        ref = ArrayRef("int64", (64,), path=path)
        try:
            np.testing.assert_array_equal(ref.resolve(), first)
            second = first[::-1].copy()
            with open(path, "wb") as handle:
                handle.write(second.tobytes())
            # Equal-size rewrites can land within the filesystem's mtime
            # granularity; pin a distinct timestamp so the test exercises
            # the signature check, not the clock.
            stat = os.stat(path)
            os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1))
            np.testing.assert_array_equal(ref.resolve(), second)
        finally:
            release_attachments()

    def test_replaced_file_is_remapped(self, tmp_path):
        import os

        from repro.gpu.shmem import ArrayRef, release_attachments

        path = str(tmp_path / "data.bin")
        first = np.arange(32, dtype=np.int64)
        with open(path, "wb") as handle:
            handle.write(first.tobytes())
        ref = ArrayRef("int64", (32,), path=path)
        try:
            np.testing.assert_array_equal(ref.resolve(), first)
            second = first + 1000
            tmp = path + ".tmp"
            with open(tmp, "wb") as handle:
                handle.write(second.tobytes())
            os.replace(tmp, path)  # new inode: signature must miss
            np.testing.assert_array_equal(ref.resolve(), second)
        finally:
            release_attachments()
