"""Remaining-surface coverage: small helpers across packages."""

import pytest

from repro.checks.edges import iter_parallel_pairs
from repro.geometry import Edge, Point, Polygon
from repro.workloads import asap7


class TestIterParallelPairs:
    def test_yields_only_overlapping_parallel(self):
        a = [Edge(Point(0, 0), Point(0, 10))]
        b = [
            Edge(Point(5, 5), Point(5, 20)),   # parallel, overlapping
            Edge(Point(5, 50), Point(5, 60)),  # parallel, disjoint
            Edge(Point(0, 0), Point(10, 0)),   # perpendicular
        ]
        pairs = list(iter_parallel_pairs(a, b))
        assert len(pairs) == 1
        assert pairs[0][1].fixed_coordinate == 5


class TestAsap7Helpers:
    def test_rule_values_match_constants(self):
        rule = asap7.width_rule(asap7.M1)
        assert rule.value == asap7.WIDTH_RULES[asap7.M1]
        rule = asap7.enclosure_rule(asap7.V2, asap7.M3)
        assert rule.value == asap7.ENCLOSURE_RULES[(asap7.V2, asap7.M3)]

    def test_rule_names(self):
        assert asap7.rule_name("W", asap7.M1) == "M1.W.1"
        assert asap7.rule_name("EN", asap7.V1, asap7.M1) == "V1.M1.EN.1"

    def test_layer_names_cover_all(self):
        for layer_num in asap7.METAL_LAYERS + asap7.VIA_LAYERS:
            assert layer_num in asap7.LAYER_NAMES

    def test_m3_pitch_row_separable(self):
        # The gap between M3 tracks must exceed the row-independence bound.
        gap = asap7.M3_PITCH - asap7.M3_WIDTH
        from repro.partition import margin_for_rule

        margin = margin_for_rule(asap7.SPACING_RULES[asap7.M3])
        assert gap >= 2 * margin + 1


class TestPolygonNameThroughTransform:
    def test_name_preserved(self):
        from repro.geometry import Transform

        p = Polygon.from_rect_coords(0, 0, 5, 5, name="pin")
        assert p.transformed(Transform(rotation=90)).name == "pin"
        assert p.translated(3, 3).name == "pin"


class TestEngineErrors:
    def test_unsupported_rule_kind_message(self):
        from repro.core.sequential import SequentialChecker
        from repro.layout import Layout

        layout = Layout("x")
        layout.new_cell("top")
        layout.set_top("top")
        checker = SequentialChecker(layout)

        class FakeRule:
            kind = "bogus"

        with pytest.raises(Exception):
            checker.run(FakeRule())


class TestViolationOrdering:
    def test_sort_violations_stable_keys(self):
        from repro.checks import sort_violations
        from repro.checks.base import Violation, ViolationKind
        from repro.geometry import Rect

        violations = [
            Violation(ViolationKind.WIDTH, 2, Rect(0, 0, 1, 1), 1, 5),
            Violation(ViolationKind.SPACING, 1, Rect(0, 0, 1, 1), 1, 5),
            Violation(ViolationKind.SPACING, 1, Rect(0, 0, 1, 1), 0, 5),
        ]
        ordered = sort_violations(violations)
        assert [v.layer for v in ordered] == [1, 1, 2]
        assert ordered[0].measured == 0
