"""Property-based engine tests: mode equivalence on random hierarchies.

The strongest engine invariant: for ANY layout, the hierarchical sequential
mode, the row-based parallel mode, and the plain flat procedures must
report identical violation sets.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.checks.spacing import check_spacing
from repro.checks.width import check_width
from repro.core import Engine
from repro.core.rules import layer
from repro.geometry import Polygon, Transform
from repro.layout import CellReference, Layout
from repro.layout.flatten import flatten_layer

LAYER = 1


@st.composite
def layouts(draw):
    """Random two-level layouts: a few leaf kinds, many placements."""
    layout = Layout("prop")
    num_leaves = draw(st.integers(min_value=1, max_value=3))
    for kind in range(num_leaves):
        leaf = layout.new_cell(f"leaf{kind}")
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            x = draw(st.integers(min_value=0, max_value=80))
            y = draw(st.integers(min_value=0, max_value=80))
            w = draw(st.integers(min_value=2, max_value=30))
            h = draw(st.integers(min_value=2, max_value=30))
            leaf.add_polygon(LAYER, Polygon.from_rect_coords(x, y, x + w, y + h))
    top = layout.new_cell("top")
    for _ in range(draw(st.integers(min_value=1, max_value=12))):
        kind = draw(st.integers(min_value=0, max_value=num_leaves - 1))
        top.add_reference(
            CellReference(
                f"leaf{kind}",
                Transform(
                    dx=draw(st.integers(min_value=-300, max_value=300)),
                    dy=draw(st.integers(min_value=-300, max_value=300)),
                    rotation=draw(st.sampled_from([0, 90, 180, 270])),
                    mirror_x=draw(st.booleans()),
                ),
            )
        )
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        x = draw(st.integers(min_value=-300, max_value=300))
        y = draw(st.integers(min_value=-300, max_value=300))
        top.add_polygon(
            LAYER,
            Polygon.from_rect_coords(
                x, y,
                x + draw(st.integers(min_value=2, max_value=40)),
                y + draw(st.integers(min_value=2, max_value=40)),
            ),
        )
    layout.set_top("top")
    return layout


COMMON_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestModeEquivalence:
    @COMMON_SETTINGS
    @given(layouts(), st.integers(min_value=1, max_value=25))
    def test_spacing_seq_equals_par_equals_flat(self, layout, value):
        rule = layer(LAYER).spacing().greater_than(value)
        seq = Engine(mode="sequential").check(layout, rules=[rule])
        par = Engine(mode="parallel").check(layout, rules=[rule])
        flat = frozenset(check_spacing(flatten_layer(layout, LAYER), LAYER, value))
        assert seq.results[0].violation_set() == par.results[0].violation_set()
        assert seq.results[0].violation_set() == flat

    @COMMON_SETTINGS
    @given(layouts(), st.integers(min_value=1, max_value=25))
    def test_width_seq_equals_par_equals_flat(self, layout, value):
        rule = layer(LAYER).width().greater_than(value)
        seq = Engine(mode="sequential").check(layout, rules=[rule])
        par = Engine(mode="parallel").check(layout, rules=[rule])
        flat = frozenset(check_width(flatten_layer(layout, LAYER), LAYER, value))
        assert seq.results[0].violation_set() == par.results[0].violation_set()
        assert seq.results[0].violation_set() == flat

    @COMMON_SETTINGS
    @given(layouts(), st.integers(min_value=2, max_value=20))
    def test_corner_seq_equals_par(self, layout, value):
        rule = layer(LAYER).corner_spacing().greater_than(value)
        seq = Engine(mode="sequential").check(layout, rules=[rule])
        par = Engine(mode="parallel").check(layout, rules=[rule])
        assert seq.results[0].violation_set() == par.results[0].violation_set()

    @COMMON_SETTINGS
    @given(layouts())
    def test_rows_on_off_equivalent(self, layout):
        from repro.core import EngineOptions

        rule = layer(LAYER).spacing().greater_than(9)
        on = Engine(mode="parallel").check(layout, rules=[rule])
        off = Engine(options=EngineOptions(mode="parallel", use_rows=False)).check(
            layout, rules=[rule]
        )
        assert on.results[0].violation_set() == off.results[0].violation_set()
