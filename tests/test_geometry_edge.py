import pytest

from repro.errors import GeometryError
from repro.geometry import Direction, Edge, Orientation, Point, Rect


def edge(x1, y1, x2, y2):
    return Edge(Point(x1, y1), Point(x2, y2))


class TestOrientationAndDirection:
    def test_horizontal(self):
        e = edge(0, 5, 10, 5)
        assert e.is_horizontal and not e.is_vertical
        assert e.orientation is Orientation.HORIZONTAL
        assert e.direction is Direction.EAST

    def test_vertical(self):
        e = edge(3, 0, 3, 10)
        assert e.is_vertical and e.orientation is Orientation.VERTICAL
        assert e.direction is Direction.NORTH

    def test_west_and_south(self):
        assert edge(10, 5, 0, 5).direction is Direction.WEST
        assert edge(3, 10, 3, 0).direction is Direction.SOUTH

    def test_degenerate_raises(self):
        with pytest.raises(GeometryError):
            edge(1, 1, 1, 1).orientation

    def test_diagonal_raises(self):
        with pytest.raises(GeometryError):
            edge(0, 0, 3, 4).orientation


class TestInteriorSide:
    """Clockwise vertex order: interior is to the right of travel."""

    def test_north_edge_interior_east(self):
        assert edge(0, 0, 0, 10).interior_side == (1, 0)

    def test_south_edge_interior_west(self):
        assert edge(0, 10, 0, 0).interior_side == (-1, 0)

    def test_east_edge_interior_south(self):
        assert edge(0, 0, 10, 0).interior_side == (0, -1)

    def test_west_edge_interior_north(self):
        assert edge(10, 0, 0, 0).interior_side == (0, 1)

    def test_opposite_directions(self):
        assert Direction.NORTH.opposite is Direction.SOUTH
        assert Direction.EAST.opposite is Direction.WEST


class TestMeasures:
    def test_length(self):
        assert edge(0, 0, 0, 7).length == 7
        assert edge(2, 5, 9, 5).length == 7

    def test_fixed_coordinate_and_span(self):
        e = edge(3, 10, 3, 2)
        assert e.fixed_coordinate == 3
        assert e.span == (2, 10)

    def test_mbr(self):
        assert edge(5, 9, 5, 1).mbr == Rect(5, 1, 5, 9)

    def test_projection_overlap(self):
        a = edge(0, 0, 0, 10)
        b = edge(5, 5, 5, 20)
        assert a.projection_overlap(b) == 5

    def test_projection_touching_is_zero(self):
        a = edge(0, 0, 0, 10)
        b = edge(5, 10, 5, 20)
        assert a.projection_overlap(b) == 0

    def test_projection_perpendicular_raises(self):
        with pytest.raises(GeometryError):
            edge(0, 0, 0, 10).projection_overlap(edge(0, 0, 10, 0))

    def test_separation(self):
        assert edge(0, 0, 0, 10).separation(edge(7, 0, 7, 10)) == 7


class TestFacing:
    def test_interiors_facing(self):
        # Left edge of a strip (interior east) faces a right edge beyond it.
        left = edge(0, 0, 0, 10)  # north: interior east
        right = edge(5, 10, 5, 0)  # south: interior west
        assert left.faces(right) and right.faces(left)

    def test_exteriors_facing(self):
        # Two polygons' near sides: neither faces the other.
        a_right = edge(5, 10, 5, 0)  # interior west (polygon A is left)
        b_left = edge(9, 0, 9, 10)  # interior east (polygon B is right)
        assert not a_right.faces(b_left) and not b_left.faces(a_right)

    def test_perpendicular_never_faces(self):
        assert not edge(0, 0, 0, 10).faces(edge(0, 0, 10, 0))

    def test_zero_separation_never_faces(self):
        a = edge(0, 0, 0, 10)
        b = edge(0, 10, 0, 0)
        assert not a.faces(b)


class TestOverlapRegion:
    def test_vertical_pair_region(self):
        a = edge(0, 0, 0, 10)
        b = edge(5, 2, 5, 20)
        assert a.overlap_region(b) == Rect(0, 2, 5, 10)

    def test_horizontal_pair_region(self):
        a = edge(0, 0, 10, 0)
        b = edge(2, 4, 20, 4)
        assert a.overlap_region(b) == Rect(2, 0, 10, 4)

    def test_no_overlap_returns_none(self):
        assert edge(0, 0, 0, 5).overlap_region(edge(3, 6, 3, 9)) is None

    def test_inflated_region(self):
        a = edge(0, 0, 0, 10)
        b = edge(5, 0, 5, 10)
        assert a.overlap_region(b, inflate=1) == Rect(-1, -1, 6, 11)

    def test_translated(self):
        assert edge(0, 0, 0, 5).translated(2, 3) == edge(2, 3, 2, 8)
