import pytest

from repro.errors import GdsiiError
from repro.gdsii.records import (
    DataType,
    RecordType,
    decode_payload,
    encode_payload,
    make_record,
    pack_record,
    unpack_records,
    xy_record,
)


class TestPayloadCodec:
    def test_int16(self):
        raw = encode_payload(DataType.INT16, [1, -2, 300])
        assert decode_payload(DataType.INT16, raw) == [1, -2, 300]

    def test_int32(self):
        raw = encode_payload(DataType.INT32, [100000, -5])
        assert decode_payload(DataType.INT32, raw) == [100000, -5]

    def test_ascii_padding_to_even(self):
        raw = encode_payload(DataType.ASCII, "ODD")
        assert len(raw) % 2 == 0
        assert decode_payload(DataType.ASCII, raw) == "ODD"

    def test_ascii_even_no_padding(self):
        raw = encode_payload(DataType.ASCII, "EVEN")
        assert raw == b"EVEN"

    def test_real8_list(self):
        raw = encode_payload(DataType.REAL8, [1.0, 0.001])
        assert decode_payload(DataType.REAL8, raw) == [1.0, 0.001]

    def test_no_data(self):
        assert encode_payload(DataType.NO_DATA, None) == b""
        assert decode_payload(DataType.NO_DATA, b"") is None

    def test_no_data_with_payload_raises(self):
        with pytest.raises(GdsiiError):
            decode_payload(DataType.NO_DATA, b"\x00")

    def test_bad_int16_length(self):
        with pytest.raises(GdsiiError):
            decode_payload(DataType.INT16, b"\x00")


class TestRecordStream:
    def test_pack_unpack_round_trip(self):
        records = [
            make_record(RecordType.HEADER, [600]),
            make_record(RecordType.LIBNAME, "TESTLIB"),
            xy_record([(0, 0), (10, 20)]),
            make_record(RecordType.ENDLIB),
        ]
        data = b"".join(pack_record(r) for r in records)
        unpacked = unpack_records(data)
        assert [r.record_type for r in unpacked] == [
            RecordType.HEADER,
            RecordType.LIBNAME,
            RecordType.XY,
            RecordType.ENDLIB,
        ]
        assert unpacked[1].text == "TESTLIB"
        assert unpacked[2].ints == [0, 0, 10, 20]

    def test_stops_at_endlib(self):
        data = pack_record(make_record(RecordType.ENDLIB)) + b"\x00" * 10
        assert len(unpack_records(data)) == 1

    def test_null_padding_tolerated(self):
        data = pack_record(make_record(RecordType.HEADER, [600])) + b"\x00\x00"
        assert len(unpack_records(data)) == 1

    def test_unknown_record_type(self):
        import struct

        data = struct.pack(">HBB", 4, 0xEE, 0x00)
        with pytest.raises(GdsiiError):
            unpack_records(data)

    def test_wrong_data_type_for_record(self):
        import struct

        # LIBNAME must carry ASCII, not INT16.
        data = struct.pack(">HBB", 6, RecordType.LIBNAME, DataType.INT16) + b"\x00\x01"
        with pytest.raises(GdsiiError):
            unpack_records(data)

    def test_truncated_record_raises(self):
        import struct

        data = struct.pack(">HBB", 100, RecordType.HEADER, DataType.INT16)
        with pytest.raises(GdsiiError):
            unpack_records(data)

    def test_record_accessors_type_errors(self):
        record = make_record(RecordType.LIBNAME, "X")
        with pytest.raises(GdsiiError):
            record.ints
        with pytest.raises(GdsiiError):
            record.reals
