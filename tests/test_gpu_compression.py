import random

import numpy as np
import pytest

from repro.geometry import Polygon
from repro.gpu import pack_edges
from repro.gpu.compression import (
    CompressionReport,
    compress_edge_buffer,
    measure_compression,
    narrowest_signed_dtype,
)


def random_polys(seed=0, n=100, extent=50_000):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        x, y = rng.randint(0, extent), rng.randint(0, extent)
        out.append(Polygon.from_rect_coords(x, y, x + rng.randint(2, 60), y + rng.randint(2, 60)))
    return out


class TestDtypeNarrowing:
    def test_small_range_int8(self):
        assert narrowest_signed_dtype(-100, 100) == np.int8

    def test_medium_range_int16(self):
        assert narrowest_signed_dtype(0, 30_000) == np.int16

    def test_large_range_int32(self):
        assert narrowest_signed_dtype(0, 100_000) == np.int32

    def test_huge_range_int64(self):
        assert narrowest_signed_dtype(0, 2 ** 40) == np.int64

    def test_overflow(self):
        with pytest.raises(OverflowError):
            narrowest_signed_dtype(0, 2 ** 70)


class TestLossless:
    @pytest.mark.parametrize("seed", range(3))
    def test_round_trip_exact(self, seed):
        buffers = pack_edges(random_polys(seed))
        for buf in buffers.values():
            restored = compress_edge_buffer(buf).decompress()
            reference = buf.sorted_by_fixed()
            assert np.array_equal(restored.fixed, reference.fixed)
            assert np.array_equal(restored.lo, reference.lo)
            assert np.array_equal(restored.hi, reference.hi)
            assert np.array_equal(restored.interior, reference.interior)
            assert np.array_equal(restored.poly, reference.poly)
            assert restored.fixed.dtype == np.int64

    def test_kernels_agree_on_decompressed(self):
        from repro.gpu import kernel_pairs_sweep

        buf = pack_edges(random_polys(7))["v"]
        direct = kernel_pairs_sweep(buf, 15, want_width=False)
        via_compressed = kernel_pairs_sweep(
            compress_edge_buffer(buf).decompress(), 15, want_width=False
        )
        def canon(hits):
            return sorted(zip(hits.xlo.tolist(), hits.ylo.tolist(), hits.xhi.tolist(),
                              hits.yhi.tolist(), hits.measured.tolist()))
        assert canon(direct) == canon(via_compressed)

    def test_empty_buffer(self):
        buf = pack_edges([])["v"]
        compressed = compress_edge_buffer(buf)
        assert compressed.count == 0
        assert len(compressed.decompress()) == 0


class TestFootprint:
    def test_compression_saves_memory(self):
        # Dense layout on a coarse grid: deltas and spans are tiny.
        polys = random_polys(1, n=400, extent=30_000)
        report = measure_compression(pack_edges(polys))
        assert report.ratio > 2.0
        assert report.buffers == 2

    def test_ratio_empty(self):
        assert CompressionReport().ratio == 1.0

    def test_report_counts_bytes(self):
        buffers = pack_edges(random_polys(2, n=50))
        report = measure_compression(buffers)
        assert report.raw_bytes == sum(b.nbytes for b in buffers.values())
        assert 0 < report.compressed_bytes < report.raw_bytes
