"""Malformed-stream corpus: the reader must fail loudly, never mis-parse."""

import struct

import pytest

from repro.errors import GdsiiError
from repro.gdsii import (
    GdsBoundary,
    GdsLibrary,
    GdsStructure,
    read_bytes,
    write_bytes,
)
from repro.gdsii.records import DataType, RecordType, make_record, pack_record


def records(*recs):
    return b"".join(pack_record(r) for r in recs)


def header():
    return [
        make_record(RecordType.HEADER, [600]),
        make_record(RecordType.BGNLIB, [2023, 1, 1, 0, 0, 0] * 2),
        make_record(RecordType.LIBNAME, "L"),
        make_record(RecordType.UNITS, [0.001, 1e-9]),
    ]


class TestLibraryLevel:
    def test_missing_header(self):
        data = records(make_record(RecordType.BGNLIB, [0] * 12))
        with pytest.raises(GdsiiError):
            read_bytes(data)

    def test_missing_units(self):
        data = records(
            make_record(RecordType.HEADER, [600]),
            make_record(RecordType.BGNLIB, [0] * 12),
            make_record(RecordType.LIBNAME, "L"),
            make_record(RecordType.ENDLIB),
        )
        with pytest.raises(GdsiiError):
            read_bytes(data)

    def test_units_wrong_arity(self):
        data = records(
            make_record(RecordType.HEADER, [600]),
            make_record(RecordType.BGNLIB, [0] * 12),
            make_record(RecordType.LIBNAME, "L"),
            make_record(RecordType.UNITS, [0.001]),
        )
        with pytest.raises(GdsiiError):
            read_bytes(data)

    def test_truncated_before_endlib(self):
        data = records(*header())
        with pytest.raises(GdsiiError):
            read_bytes(data)

    def test_element_at_library_level(self):
        data = records(*header(), make_record(RecordType.BOUNDARY))
        with pytest.raises(GdsiiError):
            read_bytes(data)


class TestStructureLevel:
    def _with_structure(self, *body):
        return records(
            *header(),
            make_record(RecordType.BGNSTR, [0] * 12),
            make_record(RecordType.STRNAME, "S"),
            *body,
        )

    def test_boundary_without_closing_point(self):
        data = self._with_structure(
            make_record(RecordType.BOUNDARY),
            make_record(RecordType.LAYER, [1]),
            make_record(RecordType.DATATYPE, [0]),
            make_record(RecordType.XY, [0, 0, 0, 10, 10, 10, 10, 0]),  # not closed
            make_record(RecordType.ENDEL),
            make_record(RecordType.ENDSTR),
            make_record(RecordType.ENDLIB),
        )
        with pytest.raises(GdsiiError):
            read_bytes(data)

    def test_boundary_too_few_points(self):
        data = self._with_structure(
            make_record(RecordType.BOUNDARY),
            make_record(RecordType.LAYER, [1]),
            make_record(RecordType.DATATYPE, [0]),
            make_record(RecordType.XY, [0, 0, 10, 10, 0, 0]),
            make_record(RecordType.ENDEL),
            make_record(RecordType.ENDSTR),
            make_record(RecordType.ENDLIB),
        )
        with pytest.raises(GdsiiError):
            read_bytes(data)

    def test_boundary_missing_layer(self):
        data = self._with_structure(
            make_record(RecordType.BOUNDARY),
            make_record(RecordType.DATATYPE, [0]),
            make_record(RecordType.XY, [0, 0, 0, 10, 10, 10, 0, 0]),
            make_record(RecordType.ENDEL),
            make_record(RecordType.ENDSTR),
            make_record(RecordType.ENDLIB),
        )
        with pytest.raises(GdsiiError):
            read_bytes(data)

    def test_sref_with_two_points(self):
        data = self._with_structure(
            make_record(RecordType.SREF),
            make_record(RecordType.SNAME, "S"),
            make_record(RecordType.XY, [0, 0, 5, 5]),
            make_record(RecordType.ENDEL),
            make_record(RecordType.ENDSTR),
            make_record(RecordType.ENDLIB),
        )
        with pytest.raises(GdsiiError):
            read_bytes(data)

    def test_aref_with_two_points(self):
        data = self._with_structure(
            make_record(RecordType.AREF),
            make_record(RecordType.SNAME, "S"),
            make_record(RecordType.COLROW, [2, 2]),
            make_record(RecordType.XY, [0, 0, 10, 0]),
            make_record(RecordType.ENDEL),
            make_record(RecordType.ENDSTR),
            make_record(RecordType.ENDLIB),
        )
        with pytest.raises(GdsiiError):
            read_bytes(data)

    def test_dangling_reference(self):
        data = self._with_structure(
            make_record(RecordType.SREF),
            make_record(RecordType.SNAME, "GHOST"),
            make_record(RecordType.XY, [0, 0]),
            make_record(RecordType.ENDEL),
            make_record(RecordType.ENDSTR),
            make_record(RecordType.ENDLIB),
        )
        with pytest.raises(GdsiiError):
            read_bytes(data)

    def test_text_elements_skipped(self):
        data = self._with_structure(
            make_record(RecordType.TEXT),
            make_record(RecordType.LAYER, [1]),
            make_record(RecordType.TEXTTYPE, [0]),
            make_record(RecordType.XY, [5, 5]),
            make_record(RecordType.STRING, "label"),
            make_record(RecordType.ENDEL),
            make_record(RecordType.ENDSTR),
            make_record(RecordType.ENDLIB),
        )
        library = read_bytes(data)
        assert library.structure("S").elements == []


class TestRecordCorruption:
    def test_garbage_bytes(self):
        with pytest.raises(GdsiiError):
            read_bytes(b"\xde\xad\xbe\xef" * 10)

    def test_record_length_past_end(self):
        data = struct.pack(">HBB", 5000, RecordType.HEADER, DataType.INT16)
        with pytest.raises(GdsiiError):
            read_bytes(data)

    def test_bit_flip_in_valid_stream_is_caught_or_parses(self):
        """Flipping record-type bytes must raise GdsiiError, never crash."""
        lib = GdsLibrary(
            structures=[
                GdsStructure(
                    "S",
                    [GdsBoundary(1, 0, [(0, 0), (0, 10), (10, 10), (10, 0)])],
                )
            ]
        )
        data = bytearray(write_bytes(lib))
        for offset in range(2, len(data), 7):
            corrupted = bytearray(data)
            corrupted[offset] ^= 0xFF
            try:
                read_bytes(bytes(corrupted))
            except GdsiiError:
                pass  # expected: loud failure
            except (ValueError, OverflowError):
                pass  # REAL8 decode errors are also acceptable
