import pytest

from repro.core import Engine
from repro.core.rules import layer, polygons
from repro.core.scheduler import (
    ScheduleAnalysis,
    SchedulerError,
    Task,
    TaskGraph,
    build_rule_graph,
)
from repro.geometry import Polygon
from repro.layout import Layout


def make_task(name, seconds=0.0, deps=()):
    return Task(name, lambda: name, list(deps), seconds=seconds)


class TestTaskGraph:
    def test_topological_order(self):
        graph = TaskGraph()
        graph.add_task("c", lambda: None, depends_on=["b"])
        graph.add_task("a", lambda: None)
        graph.add_task("b", lambda: None, depends_on=["a"])
        order = [t.name for t in graph.topological_order()]
        assert order.index("a") < order.index("b") < order.index("c")

    def test_duplicate_name_rejected(self):
        graph = TaskGraph()
        graph.add_task("a", lambda: None)
        with pytest.raises(SchedulerError):
            graph.add_task("a", lambda: None)

    def test_unknown_dependency_rejected(self):
        graph = TaskGraph()
        graph.add_task("a", lambda: None, depends_on=["ghost"])
        with pytest.raises(SchedulerError):
            graph.topological_order()

    def test_cycle_rejected(self):
        graph = TaskGraph()
        graph.add_task("a", lambda: None, depends_on=["b"])
        graph.add_task("b", lambda: None, depends_on=["a"])
        with pytest.raises(SchedulerError):
            graph.topological_order()

    def test_execute_runs_dependencies_first(self):
        log = []
        graph = TaskGraph()
        graph.add_task("second", lambda: log.append("second"), depends_on=["first"])
        graph.add_task("first", lambda: log.append("first"))
        analysis = graph.execute()
        assert log == ["first", "second"]
        assert all(t.done for t in analysis.tasks)

    def test_results_captured(self):
        graph = TaskGraph()
        graph.add_task("answer", lambda: 42)
        graph.execute()
        assert graph.task("answer").result == 42


class TestScheduleAnalysis:
    def test_serial_and_critical_path(self):
        tasks = [
            make_task("a", 1.0),
            make_task("b", 2.0, deps=["a"]),
            make_task("c", 3.0),
        ]
        analysis = ScheduleAnalysis(tasks)
        assert analysis.serial_seconds == pytest.approx(6.0)
        assert analysis.critical_path_seconds() == pytest.approx(3.0)

    def test_makespan_one_worker_is_serial(self):
        tasks = [make_task("a", 1.0), make_task("b", 2.0)]
        assert ScheduleAnalysis(tasks).makespan(1) == pytest.approx(3.0)

    def test_makespan_independent_tasks_parallelize(self):
        tasks = [make_task(f"t{i}", 1.0) for i in range(4)]
        analysis = ScheduleAnalysis(tasks)
        assert analysis.makespan(4) == pytest.approx(1.0)
        assert analysis.makespan(2) == pytest.approx(2.0)

    def test_makespan_respects_dependencies(self):
        tasks = [make_task("a", 1.0), make_task("b", 1.0, deps=["a"])]
        # A chain cannot parallelize.
        assert ScheduleAnalysis(tasks).makespan(8) == pytest.approx(2.0)

    def test_makespan_never_below_critical_path(self):
        tasks = [
            make_task("a", 2.0),
            make_task("b", 1.0, deps=["a"]),
            make_task("c", 1.0),
            make_task("d", 1.0),
        ]
        analysis = ScheduleAnalysis(tasks)
        for workers in (1, 2, 4, 8):
            assert analysis.makespan(workers) >= analysis.critical_path_seconds() - 1e-12

    def test_empty(self):
        analysis = ScheduleAnalysis([])
        assert analysis.makespan(4) == 0.0
        assert analysis.critical_path_seconds() == 0.0

    def test_bad_worker_count(self):
        with pytest.raises(SchedulerError):
            ScheduleAnalysis([make_task("a")]).makespan(0)

    def test_summary_renders(self):
        text = ScheduleAnalysis([make_task("a", 0.01)]).summary()
        assert "critical path" in text and "workers" in text


class TestRuleGraph:
    def test_shape_rule_gates_layer_rules(self):
        deck = [
            layer(1).polygons().is_rectilinear().named("SHAPE1"),
            layer(1).width().greater_than(5).named("W1"),
            layer(2).width().greater_than(5).named("W2"),
        ]
        graph = build_rule_graph(deck, lambda r: None)
        assert graph.task("W1").depends_on == ["SHAPE1"]
        assert graph.task("W2").depends_on == []

    def test_global_shape_rule_gates_everything(self):
        deck = [
            polygons().is_rectilinear().named("SHAPE"),
            layer(1).width().greater_than(5).named("W1"),
        ]
        graph = build_rule_graph(deck, lambda r: None)
        assert graph.task("W1").depends_on == ["SHAPE"]

    def test_engine_integration(self):
        layout = Layout("tg")
        top = layout.new_cell("top")
        top.add_polygon(1, Polygon.from_rect_coords(0, 0, 4, 100))
        layout.set_top("top")
        deck = [
            polygons().is_rectilinear(),
            layer(1).width().greater_than(10),
            layer(1).area().greater_than(10_000),
        ]
        report, analysis = Engine(mode="sequential").check_with_task_graph(
            layout, rules=deck, workers=2
        )
        assert report.total_violations == 2  # width + area
        assert len(analysis.tasks) == 3
        assert analysis.makespan(2) <= analysis.serial_seconds + 1e-12
        # Report keeps the deck order, not execution order.
        assert [r.rule.name for r in report.results] == [r.name for r in deck]

    def test_engine_task_graph_matches_plain_check(self, uart_layout):
        from repro.workloads import asap7

        deck = asap7.full_deck()
        engine = Engine(mode="sequential")
        plain = engine.check(uart_layout, rules=deck)
        graph_report, _ = engine.check_with_task_graph(uart_layout, rules=deck)
        for a, b in zip(plain.results, graph_report.results):
            assert a.violation_set() == b.violation_set()


class TestShards:
    def test_lpt_balance(self):
        from repro.core.scheduler import greedy_balanced_shards

        shards = greedy_balanced_shards([10, 9, 8, 1, 1, 1], 2)
        totals = sorted(sum((10, 9, 8, 1, 1, 1)[i] for i in s) for s in shards)
        # LPT places each row into the lightest shard: 13/17, never 27/3.
        assert totals == [13, 17]

    def test_deterministic_and_sorted_members(self):
        from repro.core.scheduler import greedy_balanced_shards

        weights = [3, 7, 2, 7, 5, 1, 4]
        first = greedy_balanced_shards(weights, 3)
        assert first == greedy_balanced_shards(weights, 3)
        for shard in first:
            assert shard == sorted(shard)

    def test_every_weighted_item_assigned_once(self):
        from repro.core.scheduler import greedy_balanced_shards

        weights = [4, 0, 2, 9, 0, 1]
        shards = greedy_balanced_shards(weights, 2)
        members = sorted(i for shard in shards for i in shard)
        assert members == [0, 2, 3, 5]  # zero-weight rows dropped

    def test_all_zero_weights_yield_no_shards(self):
        from repro.core.scheduler import greedy_balanced_shards

        assert greedy_balanced_shards([0, 0, 0], 4) == []

    def test_bad_shard_request(self):
        from repro.core.scheduler import greedy_balanced_shards

        with pytest.raises(SchedulerError):
            greedy_balanced_shards([1, 2], 0)

    def test_empty_weights_yield_no_shards(self):
        from repro.core.scheduler import greedy_balanced_shards

        assert greedy_balanced_shards([], 4) == []

    def test_single_weighted_item_single_shard(self):
        from repro.core.scheduler import greedy_balanced_shards

        # One weighted row must never fan out into empty sibling shards.
        assert greedy_balanced_shards([7], 4) == [[0]]
        assert greedy_balanced_shards([0, 7, 0], 4) == [[1]]

    def test_single_shard_takes_every_item(self):
        from repro.core.scheduler import greedy_balanced_shards

        assert greedy_balanced_shards([3, 1, 2], 1) == [[0, 1, 2]]

    def test_shard_count_oversubscribes(self):
        from repro.core.scheduler import SHARD_OVERSUBSCRIPTION, shard_count

        assert shard_count(100, 4) == 4 * SHARD_OVERSUBSCRIPTION
        assert shard_count(3, 4) == 3  # never more shards than rows
        assert shard_count(0, 4) == 1
