import pytest

from repro.core.rules import Rule, RuleKind, layer, polygons, validate_rules
from repro.errors import RuleError
from repro.geometry import Polygon


class TestChaining:
    def test_width_rule(self):
        rule = layer(19).width().greater_than(18)
        assert rule.kind is RuleKind.WIDTH
        assert rule.layer == 19 and rule.value == 18
        assert rule.is_intra and not rule.is_inter

    def test_spacing_rule(self):
        rule = layer(19).spacing().greater_than(21)
        assert rule.kind is RuleKind.SPACING
        assert rule.is_inter and not rule.is_intra

    def test_area_rule(self):
        rule = layer(19).area().greater_than(1000)
        assert rule.kind is RuleKind.AREA and rule.is_intra

    def test_enclosure_rule(self):
        rule = layer(21).enclosure(layer(19)).greater_than(5)
        assert rule.kind is RuleKind.ENCLOSURE
        assert rule.layer == 21 and rule.other_layer == 19
        assert rule.is_inter_layer

    def test_rectilinear_all_layers(self):
        rule = polygons().is_rectilinear()
        assert rule.kind is RuleKind.RECTILINEAR and rule.layer is None

    def test_rectilinear_one_layer(self):
        rule = layer(19).polygons().is_rectilinear()
        assert rule.layer == 19

    def test_ensures_listing1_example(self):
        rule = layer(20).polygons().ensures(lambda p: bool(p.name))
        assert rule.kind is RuleKind.ENSURES
        assert rule.predicate(Polygon.from_rect_coords(0, 0, 1, 1, name="x"))
        assert not rule.predicate(Polygon.from_rect_coords(0, 0, 1, 1))


class TestNaming:
    def test_default_names(self):
        assert layer(19).width().greater_than(18).name == "L19.W.18"
        assert layer(21).enclosure(layer(19)).greater_than(5).name == "L21.in.L19.EN.5"

    def test_named_override(self):
        rule = layer(19).width().greater_than(18).named("M1.W.1")
        assert rule.name == "M1.W.1" and str(rule) == "M1.W.1"

    def test_named_returns_copy(self):
        base = layer(19).width().greater_than(18)
        renamed = base.named("X")
        assert base.name != "X"


class TestValidation:
    def test_non_positive_value_rejected(self):
        with pytest.raises(RuleError):
            layer(19).width().greater_than(0)

    def test_negative_layer_rejected(self):
        with pytest.raises(RuleError):
            layer(-1)

    def test_ensures_requires_predicate(self):
        with pytest.raises(RuleError):
            Rule(kind=RuleKind.ENSURES, layer=1)

    def test_enclosure_requires_both_layers(self):
        with pytest.raises(RuleError):
            Rule(kind=RuleKind.ENCLOSURE, layer=1, value=5)

    def test_duplicate_rule_names_rejected(self):
        rules = [
            layer(19).width().greater_than(18).named("R"),
            layer(20).width().greater_than(18).named("R"),
        ]
        with pytest.raises(RuleError):
            validate_rules(rules)

    def test_distinct_names_pass(self):
        validate_rules(
            [layer(19).width().greater_than(18), layer(20).width().greater_than(18)]
        )


class TestListing1OnDatabase:
    def test_db_methods_mirror_listing_1(self):
        """The paper's Listing 1 defines rules through methods on the db."""
        from repro.geometry import Polygon as P
        from repro.layout import Layout

        db = Layout("listing1")
        top = db.new_cell("top")
        top.add_polygon(19, P.from_rect_coords(0, 0, 100, 100))
        top.add_polygon(20, P.from_rect_coords(0, 0, 50, 50, name="named"))
        db.set_top("top")

        from repro.core import Engine

        engine = Engine()
        engine.add_rules([
            db.polygons().is_rectilinear(),
            db.layer(19).width().greater_than(18),
            db.layer(20).polygons().ensures(lambda p: bool(p.name)),
        ])
        report = engine.check(db)
        assert report.passed
