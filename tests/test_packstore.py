"""Persistent pack store: keying, invalidation, robustness, concurrency.

The store is an accelerator, never a correctness dependency: every test
here asserts either (a) a content change produces a different key — strict
invalidation by construction — or (b) a damaged/raced store degrades to the
cold path and heals itself.
"""

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.core import Engine, EngineOptions, PackStore
from repro.core.packstore import (
    layer_geometry_digest,
    member_rows_from_arrays,
    member_rows_to_arrays,
    resolve_store,
    store_key,
)
from repro.geometry import Polygon, Transform
from repro.hierarchy.edgepack import (
    RectBuffer,
    corners_from_arrays,
    corners_to_arrays,
    edge_pair_from_arrays,
    edge_pair_to_arrays,
    rect_rows_from_arrays,
    rect_rows_to_arrays,
)
from repro.hierarchy.tree import HierarchyTree
from repro.layout import CellReference, Layout
from repro.partition.rows import margin_for_rule
from repro.workloads import asap7, build_design


def small_layout(shift: int = 0, *, via_layer: int = 2) -> Layout:
    """Two leaf kinds, a handful of instances; ``shift`` nudges one vertex."""
    layout = Layout(f"store-{shift}")
    leaf = layout.new_cell("leaf")
    leaf.add_polygon(1, Polygon.from_rect_coords(0, 0, 20 + shift, 10))
    leaf.add_polygon(via_layer, Polygon.from_rect_coords(4, 2, 8, 6))
    other = layout.new_cell("other")
    other.add_polygon(1, Polygon.from_rect_coords(0, 0, 12, 12))
    top = layout.new_cell("top")
    for i in range(4):
        top.add_reference(CellReference("leaf", Transform(dx=60 * i, dy=0)))
    top.add_reference(CellReference("other", Transform(dx=0, dy=80)))
    layout.set_top("top")
    return layout


class TestContentKeys:
    def test_identical_layouts_share_digests(self):
        a = layer_geometry_digest(HierarchyTree(small_layout()), 1)
        b = layer_geometry_digest(HierarchyTree(small_layout()), 1)
        assert a == b

    def test_mutating_one_polygon_changes_the_key(self):
        base = layer_geometry_digest(HierarchyTree(small_layout(0)), 1)
        nudged = layer_geometry_digest(HierarchyTree(small_layout(1)), 1)
        assert base != nudged
        assert store_key("fused-edges", base, True, 9) != store_key(
            "fused-edges", nudged, True, 9
        )

    def test_mutation_on_another_layer_keeps_the_key(self):
        # Layer 1 geometry is identical; only the via layer moved.
        base = layer_geometry_digest(HierarchyTree(small_layout(via_layer=2)), 1)
        moved = layer_geometry_digest(HierarchyTree(small_layout(via_layer=3)), 1)
        assert base == moved

    def test_partition_threshold_changes_the_key(self):
        digest = layer_geometry_digest(HierarchyTree(small_layout()), 1)
        assert margin_for_rule(18) != margin_for_rule(24)
        assert store_key("partition", digest, margin_for_rule(18)) != store_key(
            "partition", digest, margin_for_rule(24)
        )

    def test_use_rows_flag_changes_the_key(self):
        digest = layer_geometry_digest(HierarchyTree(small_layout()), 1)
        assert store_key("fused-edges", digest, True, 9) != store_key(
            "fused-edges", digest, False, 9
        )

    def test_reordering_layers_changes_the_key(self):
        tree = HierarchyTree(small_layout())
        d1 = layer_geometry_digest(tree, 1)
        d2 = layer_geometry_digest(tree, 2)
        assert d1 != d2
        assert store_key("rect-rows", (d1, d2), True, 9) != store_key(
            "rect-rows", (d2, d1), True, 9
        )

    def test_placement_change_changes_the_digest(self):
        layout = small_layout()
        moved = small_layout()
        moved.cell("top").add_reference(
            CellReference("leaf", Transform(dx=500, dy=0))
        )
        assert layer_geometry_digest(HierarchyTree(layout), 1) != (
            layer_geometry_digest(HierarchyTree(moved), 1)
        )


class TestRoundTrip:
    def test_save_then_load_memmaps_identical_arrays(self, tmp_path):
        store = PackStore(str(tmp_path))
        arrays = {
            "a": np.arange(100, dtype=np.int64),
            "b": np.arange(12, dtype=np.int32).reshape(3, 4),
            "empty": np.zeros(0, dtype=np.int64),
        }
        key = store_key("test", "digest", 1)
        store.save(key, arrays, {"tag": "x"})
        loaded = store.load(key, lambda arr, meta: (dict(arr), meta))
        assert loaded is not None
        got, meta = loaded
        assert meta == {"tag": "x"}
        for name, array in arrays.items():
            np.testing.assert_array_equal(got[name], array)
            assert not got[name].flags.writeable
        assert store.hits == 1 and store.misses == 0

    def test_missing_key_is_a_miss(self, tmp_path):
        store = PackStore(str(tmp_path))
        assert store.load("0" * 64, lambda a, m: a) is None
        assert store.misses == 1

    def test_member_rows_codec(self):
        rows = [[3, 1, 2], [], [7]]
        arrays, meta = member_rows_to_arrays(rows)
        assert member_rows_from_arrays(arrays, meta) == rows

    def test_edge_pair_codec(self, tmp_path):
        from repro.gpu.kernels import pack_edges
        from repro.hierarchy.edgepack import EdgeBufferPair

        bufs = pack_edges([Polygon.from_rect_coords(0, 0, 10, 4)])
        pair = EdgeBufferPair(bufs["v"], bufs["h"], 1)
        store = PackStore(str(tmp_path))
        arrays, meta = edge_pair_to_arrays(pair)
        store.save("k" * 64, arrays, meta)
        decoded = store.load("k" * 64, edge_pair_from_arrays)
        for got, want in ((decoded.vertical, pair.vertical), (decoded.horizontal, pair.horizontal)):
            np.testing.assert_array_equal(got.fixed, want.fixed)
            np.testing.assert_array_equal(got.lo, want.lo)
            np.testing.assert_array_equal(got.hi, want.hi)
            np.testing.assert_array_equal(got.interior, want.interior)
            np.testing.assert_array_equal(got.poly, want.poly)
        assert decoded.num_polygons == 1

    def test_corners_codec(self, tmp_path):
        from repro.gpu.kernels import pack_corners

        buf = pack_corners([Polygon.from_rect_coords(0, 0, 10, 4)])
        buf.segment = np.zeros(len(buf), dtype=np.int64)
        store = PackStore(str(tmp_path))
        arrays, meta = corners_to_arrays(buf)
        store.save("c" * 64, arrays, meta)
        decoded = store.load("c" * 64, corners_from_arrays)
        np.testing.assert_array_equal(decoded.x, buf.x)
        np.testing.assert_array_equal(decoded.segment, buf.segment)

    def test_rect_rows_codec(self, tmp_path):
        rows = [
            RectBuffer(np.asarray([[0, 0, 4, 4]], dtype=np.int64), True),
            RectBuffer.empty(),
            RectBuffer(np.asarray([[1, 1, 9, 9], [2, 2, 3, 3]], dtype=np.int64), False),
        ]
        store = PackStore(str(tmp_path))
        arrays, meta = rect_rows_to_arrays(rows)
        store.save("r" * 64, arrays, meta)
        decoded = store.load("r" * 64, rect_rows_from_arrays)
        assert len(decoded) == 3
        for got, want in zip(decoded, rows):
            np.testing.assert_array_equal(got.rects, want.rects)
            assert got.all_rect == want.all_rect


class TestCorruption:
    def _seed_entry(self, store):
        key = store_key("test", "digest")
        store.save(key, {"a": np.arange(64, dtype=np.int64)}, {})
        return key, store._entry_path(key)

    @pytest.mark.parametrize("damage", ["truncate", "magic", "header", "version"])
    def test_damaged_entry_misses_and_is_dropped(self, tmp_path, damage):
        store = PackStore(str(tmp_path))
        key, path = self._seed_entry(store)
        data = bytearray(open(path, "rb").read())
        if damage == "truncate":
            data = data[: len(data) // 2]
        elif damage == "magic":
            data[:8] = b"XXXXXXXX"
        elif damage == "header":
            data[20] = (data[20] + 1) % 256  # breaks the JSON
        else:
            header_len = int(np.frombuffer(bytes(data[8:16]), dtype="<u8")[0])
            header = json.loads(bytes(data[16 : 16 + header_len]))
            header["version"] = 999
            blob = json.dumps(header).encode()
            # keep length plausible by rewriting header_len too
            data[8:16] = np.uint64(len(blob)).tobytes()
            data = data[:16] + blob + data[16 + header_len :]
        with open(path, "wb") as fh:
            fh.write(bytes(data))
        assert store.load(key, lambda a, m: a) is None
        assert store.misses == 1
        assert not os.path.exists(path)  # corrupt entry dropped
        # The cold path rewrites it and the next read hits.
        store.save(key, {"a": np.arange(64, dtype=np.int64)}, {})
        assert store.load(key, lambda a, m: dict(a)) is not None

    def test_decode_error_counts_as_miss_and_drops(self, tmp_path):
        store = PackStore(str(tmp_path))
        key, path = self._seed_entry(store)

        def bad_decode(arrays, meta):
            raise KeyError("codec moved on")

        assert store.load(key, bad_decode) is None
        assert store.misses == 1
        assert not os.path.exists(path)

    def test_corrupt_entries_are_counted(self, tmp_path):
        store = PackStore(str(tmp_path))
        key, path = self._seed_entry(store)
        with open(path, "r+b") as fh:
            fh.truncate(10)
        assert store.load(key, lambda a, m: a) is None
        assert store.corrupt == 1
        assert store.counters()["corrupt"] == 1
        # Plain cache misses are not corruption.
        assert store.load("f" * 64, lambda a, m: a) is None
        assert store.corrupt == 1

    def test_corrupt_counter_persists(self, tmp_path):
        store = PackStore(str(tmp_path))
        key, path = self._seed_entry(store)
        with open(path, "r+b") as fh:
            fh.truncate(10)
        store.load(key, lambda a, m: a)
        store.persist_counters()
        assert PackStore(str(tmp_path)).persisted_counters()["corrupt"] == 1

    def test_drop_of_missing_entry_is_quiet(self, tmp_path):
        # Two processes can race to drop the same corrupt entry; losing the
        # race (ENOENT) must not raise.
        store = PackStore(str(tmp_path))
        key, path = self._seed_entry(store)
        store._drop(key)
        assert not os.path.exists(path)
        store._drop(key)  # already gone
        store._drop("0" * 64)  # never existed

    def test_injected_corruption_damages_the_real_file(self, tmp_path):
        # The packstore_corrupt fault site corrupts the on-disk entry, so
        # the store's genuine recovery path (not a simulation) runs.
        from repro.util import faults

        store = PackStore(str(tmp_path))
        key, path = self._seed_entry(store)
        faults.install("packstore_corrupt:times=1")
        try:
            assert store.load(key, lambda a, m: a) is None
            assert store.corrupt == 1
            assert not os.path.exists(path)  # dropped after the damage
            # Budget spent: the rewritten entry reads back clean.
            store.save(key, {"a": np.arange(64, dtype=np.int64)}, {})
            assert store.load(key, lambda a, m: dict(a)) is not None
            assert store.corrupt == 1
        finally:
            faults.clear()

    def test_engine_recovers_from_corrupted_store(self, tmp_path):
        layout = build_design("uart", "ci")
        rules = asap7.spacing_deck()
        opts = lambda: EngineOptions(mode="parallel", cache_dir=str(tmp_path))  # noqa: E731
        baseline = Engine(options=EngineOptions(mode="parallel")).check(
            layout, rules=rules
        )
        Engine(options=opts()).check(layout, rules=rules)
        store = PackStore(str(tmp_path))
        entries = store.entries()
        assert entries
        for key, _ in entries:
            path = store._entry_path(key)
            with open(path, "r+b") as fh:
                fh.truncate(10)
        report = Engine(options=opts()).check(layout, rules=rules)
        assert report.to_csv() == baseline.to_csv()
        # Every entry was rewritten by the cold path.
        for key, nbytes in PackStore(str(tmp_path)).entries():
            assert nbytes > 16


def _writer(args):
    root, key, value = args
    store = PackStore(root)
    store.save(key, {"a": np.full(4096, value, dtype=np.int64)}, {"writer": value})
    return True


class TestConcurrency:
    def test_concurrent_writers_leave_a_readable_store(self, tmp_path):
        key = store_key("race", "digest")
        with multiprocessing.get_context("spawn").Pool(2) as pool:
            results = pool.map(
                _writer, [(str(tmp_path), key, 1), (str(tmp_path), key, 2)]
            )
        assert all(results)
        store = PackStore(str(tmp_path))
        loaded = store.load(key, lambda arrays, meta: (dict(arrays), meta))
        assert loaded is not None
        arrays, meta = loaded
        # Last rename wins: the entry is one writer's complete payload.
        assert meta["writer"] in (1, 2)
        assert set(np.unique(arrays["a"]).tolist()) == {meta["writer"]}
        # No temp droppings survive.
        leftovers = [
            name
            for _, _, files in os.walk(tmp_path)
            for name in files
            if name.endswith(".tmp")
        ]
        assert leftovers == []


class TestResolveStore:
    def test_disabled_or_unconfigured_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_store(EngineOptions()) is None
        assert resolve_store(EngineOptions(cache_dir="/tmp/x", use_cache=False)) is None

    def test_env_var_engages(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store = resolve_store(EngineOptions())
        assert store is not None and store.root == str(tmp_path)

    def test_option_wins_over_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/nonexistent")
        store = resolve_store(EngineOptions(cache_dir=str(tmp_path)))
        assert store.root == str(tmp_path)


class TestMaintenance:
    def test_entries_total_bytes_and_clear(self, tmp_path):
        store = PackStore(str(tmp_path))
        for i in range(3):
            store.save(store_key("k", i), {"a": np.arange(32, dtype=np.int64)}, {})
        assert len(store.entries()) == 3
        assert store.total_bytes > 0
        assert store.clear() == 3
        assert store.entries() == []

    def test_persist_counters_is_idempotent(self, tmp_path):
        store = PackStore(str(tmp_path))
        store.save(store_key("k"), {"a": np.arange(32, dtype=np.int64)}, {})
        store.load(store_key("k"), lambda a, m: a)
        store.persist_counters()
        store.persist_counters()  # no new delta: must not double count
        totals = store.persisted_counters()
        assert totals["hits"] == 1
        other = PackStore(str(tmp_path))
        other.load(store_key("k"), lambda a, m: a)
        other.persist_counters()
        assert PackStore(str(tmp_path)).persisted_counters()["hits"] == 2
