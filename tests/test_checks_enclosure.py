from repro.checks import (
    ViolationKind,
    check_enclosure,
    enclosure_margin,
    enclosure_pair_violations,
)
from repro.geometry import Polygon, Rect


def rect(x1, y1, x2, y2):
    return Polygon.from_rect_coords(x1, y1, x2, y2)


class TestEnclosureMargin:
    def test_centered_via(self):
        via = rect(10, 10, 14, 14)
        metal = rect(5, 5, 19, 19)
        assert enclosure_margin(via, metal) == 5

    def test_asymmetric_margin_takes_minimum(self):
        via = rect(6, 10, 10, 14)
        metal = rect(5, 5, 19, 19)
        assert enclosure_margin(via, metal) == 1

    def test_zero_margin(self):
        via = rect(5, 10, 9, 14)
        metal = rect(5, 5, 19, 19)
        assert enclosure_margin(via, metal) == 0

    def test_via_poking_out_not_enclosed(self):
        via = rect(0, 10, 8, 14)
        metal = rect(5, 5, 19, 19)
        assert enclosure_margin(via, metal) is None

    def test_disjoint_not_enclosed(self):
        assert enclosure_margin(rect(100, 100, 104, 104), rect(0, 0, 20, 20)) is None

    def test_via_in_notch_not_enclosed(self):
        # U-shaped metal: the via sits in the exterior notch.
        metal = Polygon(
            [(0, 0), (0, 50), (10, 50), (10, 10), (30, 10), (30, 50), (40, 50), (40, 0)]
        )
        via = rect(18, 30, 22, 34)
        assert enclosure_margin(via, metal) is None

    def test_via_in_l_arm(self):
        metal = Polygon([(0, 0), (0, 100), (20, 100), (20, 20), (80, 20), (80, 0)])
        via = rect(5, 50, 15, 60)
        assert enclosure_margin(via, metal) == 5


class TestPairViolations:
    def test_satisfied_by_one_candidate(self):
        via = rect(10, 10, 14, 14)
        good = rect(0, 0, 24, 24)
        bad = rect(9, 9, 15, 15)
        assert enclosure_pair_violations(via, [bad, good], 2, 1, 5) == []

    def test_best_margin_reported(self):
        via = rect(10, 10, 14, 14)
        tight = rect(8, 8, 16, 16)  # margin 2
        tighter = rect(9, 9, 15, 15)  # margin 1
        violations = enclosure_pair_violations(via, [tighter, tight], 2, 1, 5)
        assert len(violations) == 1
        v = violations[0]
        assert v.kind is ViolationKind.ENCLOSURE
        assert v.measured == 2 and v.required == 5
        assert v.layer == 2 and v.other_layer == 1

    def test_unenclosed_via_measured_zero(self):
        via = rect(10, 10, 14, 14)
        violations = enclosure_pair_violations(via, [], 2, 1, 5)
        assert violations[0].measured == 0

    def test_region_is_inflated_via(self):
        via = rect(10, 10, 14, 14)
        violations = enclosure_pair_violations(via, [], 2, 1, 3)
        assert violations[0].region == Rect(7, 7, 17, 17)


class TestFlatCheck:
    def test_mixed_population(self):
        vias = [rect(10, 10, 14, 14), rect(110, 10, 114, 14), rect(210, 10, 214, 14)]
        metals = [
            rect(0, 0, 24, 24),  # margin 10: ok
            rect(108, 8, 116, 16),  # margin 2: violation
            # third via has no metal at all
        ]
        violations = check_enclosure(vias, metals, 2, 1, 5)
        assert len(violations) == 2
        assert sorted(v.measured for v in violations) == [0, 2]

    def test_metal_from_anywhere_counts(self):
        # Candidate pairing must find a metal that only touches the via
        # window, not just metals near other vias.
        via = rect(1000, 1000, 1004, 1004)
        metal = rect(990, 990, 1014, 1014)
        assert check_enclosure([via], [metal], 2, 1, 10) == []

    def test_empty_vias(self):
        assert check_enclosure([], [rect(0, 0, 10, 10)], 2, 1, 5) == []
