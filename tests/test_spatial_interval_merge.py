import random

import pytest

from repro.geometry import Interval
from repro.spatial import merge_intervals_pigeonhole, merge_intervals_sorted


class TestPigeonholeMerge:
    def test_empty(self):
        assert merge_intervals_pigeonhole([]) == []

    def test_single(self):
        assert merge_intervals_pigeonhole([Interval(3, 9)]) == [Interval(3, 9)]

    def test_point_interval(self):
        assert merge_intervals_pigeonhole([Interval(5, 5)]) == [Interval(5, 5)]

    def test_overlapping_merge(self):
        result = merge_intervals_pigeonhole([Interval(0, 10), Interval(5, 20)])
        assert result == [Interval(0, 20)]

    def test_touching_merge(self):
        result = merge_intervals_pigeonhole([Interval(0, 5), Interval(5, 9)])
        assert result == [Interval(0, 9)]

    def test_adjacent_do_not_merge(self):
        result = merge_intervals_pigeonhole([Interval(0, 5), Interval(6, 9)])
        assert result == [Interval(0, 5), Interval(6, 9)]

    def test_nested(self):
        result = merge_intervals_pigeonhole([Interval(0, 100), Interval(10, 20)])
        assert result == [Interval(0, 100)]

    def test_chain_merge(self):
        ivs = [Interval(i * 10, i * 10 + 10) for i in range(10)]
        assert merge_intervals_pigeonhole(ivs) == [Interval(0, 100)]

    def test_unsorted_input(self):
        ivs = [Interval(50, 60), Interval(0, 10), Interval(55, 70)]
        assert merge_intervals_pigeonhole(ivs) == [Interval(0, 10), Interval(50, 70)]

    def test_negative_coordinates(self):
        ivs = [Interval(-20, -10), Interval(-15, 5)]
        assert merge_intervals_pigeonhole(ivs) == [Interval(-20, 5)]

    @pytest.mark.parametrize("seed", range(8))
    def test_agrees_with_sorting_baseline(self, seed):
        rng = random.Random(seed)
        ivs = [
            Interval.of(rng.randint(-100, 100), rng.randint(-100, 100))
            for _ in range(rng.randint(1, 400))
        ]
        assert merge_intervals_pigeonhole(ivs) == merge_intervals_sorted(ivs)

    def test_many_duplicates(self):
        # k >> N: the regime the pigeonhole array targets (paper §IV-B).
        ivs = [Interval(0, 10)] * 1000 + [Interval(20, 30)] * 1000
        assert merge_intervals_pigeonhole(ivs) == [Interval(0, 10), Interval(20, 30)]


class TestMergeProperties:
    @pytest.mark.parametrize("seed", range(4))
    def test_output_is_disjoint_sorted_cover(self, seed):
        rng = random.Random(1000 + seed)
        ivs = [Interval.of(rng.randint(0, 300), rng.randint(0, 300)) for _ in range(200)]
        merged = merge_intervals_pigeonhole(ivs)
        # sorted and disjoint with gaps
        for a, b in zip(merged, merged[1:]):
            assert a.hi < b.lo
        # covers every input point
        for iv in ivs:
            assert any(m.lo <= iv.lo and iv.hi <= m.hi for m in merged)
        # endpoints come from the input
        points = {v for iv in ivs for v in iv}
        for m in merged:
            assert m.lo in points and m.hi in points
