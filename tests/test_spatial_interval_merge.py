import random

import pytest

from repro.geometry import Interval
from repro.spatial import merge_intervals_pigeonhole, merge_intervals_sorted


class TestPigeonholeMerge:
    def test_empty(self):
        assert merge_intervals_pigeonhole([]) == []

    def test_single(self):
        assert merge_intervals_pigeonhole([Interval(3, 9)]) == [Interval(3, 9)]

    def test_point_interval(self):
        assert merge_intervals_pigeonhole([Interval(5, 5)]) == [Interval(5, 5)]

    def test_overlapping_merge(self):
        result = merge_intervals_pigeonhole([Interval(0, 10), Interval(5, 20)])
        assert result == [Interval(0, 20)]

    def test_touching_merge(self):
        result = merge_intervals_pigeonhole([Interval(0, 5), Interval(5, 9)])
        assert result == [Interval(0, 9)]

    def test_adjacent_do_not_merge(self):
        result = merge_intervals_pigeonhole([Interval(0, 5), Interval(6, 9)])
        assert result == [Interval(0, 5), Interval(6, 9)]

    def test_nested(self):
        result = merge_intervals_pigeonhole([Interval(0, 100), Interval(10, 20)])
        assert result == [Interval(0, 100)]

    def test_chain_merge(self):
        ivs = [Interval(i * 10, i * 10 + 10) for i in range(10)]
        assert merge_intervals_pigeonhole(ivs) == [Interval(0, 100)]

    def test_unsorted_input(self):
        ivs = [Interval(50, 60), Interval(0, 10), Interval(55, 70)]
        assert merge_intervals_pigeonhole(ivs) == [Interval(0, 10), Interval(50, 70)]

    def test_negative_coordinates(self):
        ivs = [Interval(-20, -10), Interval(-15, 5)]
        assert merge_intervals_pigeonhole(ivs) == [Interval(-20, 5)]

    @pytest.mark.parametrize("seed", range(8))
    def test_agrees_with_sorting_baseline(self, seed):
        rng = random.Random(seed)
        ivs = [
            Interval.of(rng.randint(-100, 100), rng.randint(-100, 100))
            for _ in range(rng.randint(1, 400))
        ]
        assert merge_intervals_pigeonhole(ivs) == merge_intervals_sorted(ivs)

    def test_many_duplicates(self):
        # k >> N: the regime the pigeonhole array targets (paper §IV-B).
        ivs = [Interval(0, 10)] * 1000 + [Interval(20, 30)] * 1000
        assert merge_intervals_pigeonhole(ivs) == [Interval(0, 10), Interval(20, 30)]


class TestMergeProperties:
    @pytest.mark.parametrize("seed", range(4))
    def test_output_is_disjoint_sorted_cover(self, seed):
        rng = random.Random(1000 + seed)
        ivs = [Interval.of(rng.randint(0, 300), rng.randint(0, 300)) for _ in range(200)]
        merged = merge_intervals_pigeonhole(ivs)
        # sorted and disjoint with gaps
        for a, b in zip(merged, merged[1:]):
            assert a.hi < b.lo
        # covers every input point
        for iv in ivs:
            assert any(m.lo <= iv.lo and iv.hi <= m.hi for m in merged)
        # endpoints come from the input
        points = {v for iv in ivs for v in iv}
        for m in merged:
            assert m.lo in points and m.hi in points


class TestCoalesceRects:
    def _points(self, rects, span=80):
        from repro.geometry import Rect

        covered = set()
        for r in rects:
            if isinstance(r, Rect) and r.is_empty:
                continue
            for x in range(r.xlo, r.xhi + 1):
                for y in range(r.ylo, r.yhi + 1):
                    covered.add((x, y))
        return covered

    def test_empty_and_single(self):
        from repro.geometry import EMPTY_RECT, Rect
        from repro.spatial import coalesce_rects

        assert coalesce_rects([]) == []
        assert coalesce_rects([EMPTY_RECT]) == []
        assert coalesce_rects([Rect(0, 0, 5, 5)]) == [Rect(0, 0, 5, 5)]

    def test_disjoint_rects_survive(self):
        from repro.geometry import Rect
        from repro.spatial import coalesce_rects

        rects = [Rect(0, 0, 5, 5), Rect(10, 10, 15, 15)]
        assert sorted(coalesce_rects(rects)) == sorted(rects)

    def test_identical_rects_dedupe(self):
        from repro.geometry import Rect
        from repro.spatial import coalesce_rects

        assert coalesce_rects([Rect(0, 0, 5, 5)] * 7) == [Rect(0, 0, 5, 5)]

    @pytest.mark.parametrize("seed", range(6))
    def test_cover_is_exact_union(self, seed):
        """The disjoint cover contains exactly the input union's points."""
        from repro.geometry import Rect
        from repro.spatial import coalesce_rects

        rng = random.Random(seed)
        rects = []
        for _ in range(rng.randint(1, 12)):
            xlo, ylo = rng.randint(0, 30), rng.randint(0, 30)
            rects.append(
                Rect(xlo, ylo, xlo + rng.randint(0, 12), ylo + rng.randint(0, 12))
            )
        cover = coalesce_rects(rects)
        assert self._points(cover) == self._points(rects)

    @pytest.mark.parametrize("seed", range(3))
    def test_cover_rects_are_disjoint_in_overlap_queries(self, seed):
        """Overlap against the cover equals overlap against the input union.

        (Cover members may touch at shared boundaries — closed rects — but
        every query rect answers identically against cover and union.)"""
        from repro.geometry import Rect
        from repro.spatial import coalesce_rects

        rng = random.Random(100 + seed)
        rects = []
        for _ in range(8):
            xlo, ylo = rng.randint(0, 25), rng.randint(0, 25)
            rects.append(
                Rect(xlo, ylo, xlo + rng.randint(0, 10), ylo + rng.randint(0, 10))
            )
        cover = coalesce_rects(rects)
        for _ in range(300):
            qx, qy = rng.randint(-2, 38), rng.randint(-2, 38)
            query = Rect(qx, qy, qx + rng.randint(0, 6), qy + rng.randint(0, 6))
            against_inputs = any(r.overlaps(query) for r in rects)
            against_cover = any(r.overlaps(query) for r in cover)
            assert against_cover == against_inputs

    def test_degenerate_zero_height_rects(self):
        from repro.geometry import Rect
        from repro.spatial import coalesce_rects

        rects = [Rect(0, 5, 10, 5), Rect(8, 5, 20, 5)]
        assert coalesce_rects(rects) == [Rect(0, 5, 20, 5)]
