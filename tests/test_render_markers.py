import pytest

from repro.core import Engine
from repro.core.markers import (
    MarkerError,
    diff_markers,
    load_markers,
    report_from_dict,
    report_to_dict,
    save_markers,
)
from repro.core.rules import layer
from repro.geometry import Polygon, Rect
from repro.layout import Layout
from repro.util.render import render_window
from repro.workloads import InjectionPlan, asap7, build_design, inject_violations


def dirty_report():
    layout = build_design("uart")
    inject_violations(layout, InjectionPlan(spacing=3, width=2), layer=asap7.M2, seed=4)
    deck = [asap7.spacing_rule(asap7.M2), asap7.width_rule(asap7.M2)]
    return Engine(mode="sequential").check(layout, rules=deck), layout


class TestMarkers:
    def test_round_trip_equal_violations(self, tmp_path):
        report, _ = dirty_report()
        path = tmp_path / "markers.json"
        save_markers(report, path)
        loaded = load_markers(path)
        assert loaded.layout_name == report.layout_name
        for a, b in zip(report.results, loaded.results):
            assert a.rule.name == b.rule.name
            assert a.violation_set() == b.violation_set()

    def test_enclosure_and_corner_kinds_round_trip(self, tmp_path):
        layout = Layout("mk")
        top = layout.new_cell("top")
        top.add_polygon(2, Polygon.from_rect_coords(0, 0, 4, 4))  # via, no metal
        top.add_polygon(1, Polygon.from_rect_coords(100, 100, 110, 110))
        top.add_polygon(1, Polygon.from_rect_coords(113, 113, 123, 123))
        layout.set_top("top")
        deck = [
            layer(2).enclosure(layer(1)).greater_than(3),
            layer(1).corner_spacing().greater_than(8),
        ]
        report = Engine(mode="sequential").check(layout, rules=deck)
        assert report.total_violations == 2
        path = tmp_path / "m.json"
        save_markers(report, path)
        loaded = load_markers(path)
        for a, b in zip(report.results, loaded.results):
            assert a.violation_set() == b.violation_set()

    def test_bad_format_rejected(self):
        with pytest.raises(MarkerError):
            report_from_dict({"format": 99, "results": []})

    def test_bad_kind_rejected(self):
        data = report_to_dict(dirty_report()[0])
        data["results"][0]["kind"] = "teleportation"
        with pytest.raises(MarkerError):
            report_from_dict(data)

    def test_diff_markers(self):
        report, layout = dirty_report()
        # "Fix" everything by re-checking a clean design under the same rules.
        clean = Engine(mode="sequential").check(
            build_design("uart"),
            rules=[asap7.spacing_rule(asap7.M2), asap7.width_rule(asap7.M2)],
        )
        diff = diff_markers(report, clean)
        assert diff["M2.S.1"]["fixed"] == 3 and diff["M2.S.1"]["new"] == 0
        assert diff["M2.W.1"]["fixed"] == 2
        same = diff_markers(report, report)
        assert all(d["fixed"] == 0 and d["new"] == 0 for d in same.values())


class TestRender:
    def test_basic_render(self):
        layout = Layout("r")
        top = layout.new_cell("top")
        top.add_polygon(1, Polygon.from_rect_coords(0, 0, 50, 20))
        top.add_polygon(2, Polygon.from_rect_coords(40, 10, 90, 40))
        layout.set_top("top")
        text = render_window(layout, Rect(0, 0, 100, 50), width=20, height=10)
        assert "a=L1" in text and "b=L2" in text
        assert "a" in text and "b" in text
        assert "#" in text  # the overlap region

    def test_violations_drawn(self):
        layout = Layout("rv")
        top = layout.new_cell("top")
        top.add_polygon(1, Polygon.from_rect_coords(0, 0, 40, 10))
        top.add_polygon(1, Polygon.from_rect_coords(0, 14, 40, 24))
        layout.set_top("top")
        report = Engine(mode="sequential").check(
            layout, rules=[layer(1).spacing().greater_than(8)]
        )
        text = render_window(
            layout,
            Rect(0, 0, 40, 24),
            width=20,
            height=12,
            violations=report.results[0].violations,
        )
        assert "X" in text

    def test_empty_window_rejected(self):
        layout = Layout("e")
        layout.new_cell("top")
        layout.set_top("top")
        with pytest.raises(ValueError):
            render_window(layout, Rect(0, 0, 0, 10))

    def test_rows_top_down(self):
        layout = Layout("o")
        top = layout.new_cell("top")
        top.add_polygon(1, Polygon.from_rect_coords(0, 90, 100, 100))  # at the top
        layout.set_top("top")
        text = render_window(layout, Rect(0, 0, 100, 100), width=10, height=10)
        lines = text.splitlines()[1:]
        assert "a" in lines[0] and "a" not in lines[-1]


class TestWaivers:
    def test_waiver_suppresses_matching_violation(self):
        from repro.core.markers import apply_waivers

        report, _ = dirty_report()
        spacing = report.result("M2.S.1")
        target = spacing.violations[0]
        waived = apply_waivers(
            report,
            [{"rule": "M2.S.1", "region": list(target.region.inflated(1))}],
        )
        # Mark-not-drop: the violation stays in the report (same set, so
        # splices/diffs are oblivious) but no longer blocks.
        marked = waived.result("M2.S.1")
        assert marked.num_violations == spacing.num_violations
        assert marked.num_waived == 1
        assert marked.num_blocking == spacing.num_violations - 1
        assert marked.violation_set() == spacing.violation_set()
        # Other rules untouched.
        assert waived.result("M2.W.1").num_waived == 0
        # Original report unchanged.
        assert report.result("M2.S.1").num_waived == 0

    def test_star_rule_waives_everything_in_region(self):
        from repro.core.markers import apply_waivers

        report, _ = dirty_report()
        everything = [{"rule": "*", "region": [-10**9, -10**9, 10**9, 10**9]}]
        waived = apply_waivers(report, everything)
        assert waived.total_violations == report.total_violations
        assert waived.total_waived == report.total_violations
        assert waived.blocking_violations == 0
        assert waived.ok

    def test_partial_overlap_not_waived(self):
        from repro.core.markers import apply_waivers

        report, _ = dirty_report()
        target = report.result("M2.S.1").violations[0]
        clipped = Rect(
            target.region.xlo + 1, target.region.ylo,
            target.region.xhi, target.region.yhi,
        )
        waived = apply_waivers(
            report, [{"rule": "M2.S.1", "region": list(clipped)}]
        )
        assert waived.total_violations == report.total_violations
        assert waived.total_waived == 0

    def test_waiver_round_trip(self, tmp_path):
        from repro.core.markers import load_waivers, save_waivers

        waivers = [{"rule": "M2.S.1", "region": [0, 0, 10, 10]}]
        path = tmp_path / "waivers.json"
        save_waivers(waivers, path)
        assert load_waivers(path) == waivers

    def test_bad_waiver_region_rejected(self):
        from repro.core.markers import MarkerError, apply_waivers

        report, _ = dirty_report()
        with pytest.raises(MarkerError):
            apply_waivers(report, [{"rule": "*", "region": [1, 2, 3]}])
