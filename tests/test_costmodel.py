"""The calibrated cost model: estimates, routing, persistence."""

import json

import pytest

from repro.core import costmodel
from repro.core.costmodel import (
    BREAK_EVEN_SAFETY,
    COSTMODEL_FILENAME,
    CostModel,
    DEFAULT_DISPATCH_SECONDS,
    EWMA_ALPHA,
    MAX_RULE_ENTRIES,
    TARGET_DISPATCH_MULTIPLE,
    model_for,
    reset_models,
)
from repro.core.scheduler import SHARD_OVERSUBSCRIPTION, shard_count


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_models()
    yield
    reset_models()


class TestCalibration:
    def test_dispatch_keeps_the_minimum(self):
        model = CostModel()
        model.observe_dispatch(2e-3)
        model.observe_dispatch(1e-3)
        model.observe_dispatch(5e-3)
        assert model.overhead() == pytest.approx(1e-3)

    def test_dispatch_ignores_nonpositive(self):
        model = CostModel()
        model.observe_dispatch(0.0)
        model.observe_dispatch(-1.0)
        assert model.dispatch_seconds is None
        assert model.overhead() == DEFAULT_DISPATCH_SECONDS

    def test_kind_rate_is_an_ewma(self):
        model = CostModel()
        model.observe_kind("spacing", weight=100.0, seconds=1.0)  # rate 0.01
        assert model.estimate_kind("spacing", 50.0) == pytest.approx(0.5)
        model.observe_kind("spacing", weight=100.0, seconds=3.0)  # rate 0.03
        blended = (1 - EWMA_ALPHA) * 0.01 + EWMA_ALPHA * 0.03
        assert model.estimate_kind("spacing", 100.0) == pytest.approx(
            blended * 100.0
        )

    def test_rule_cost_is_an_ewma(self):
        model = CostModel()
        model.observe_rule("k", 1.0)
        assert model.estimate_rule("k") == pytest.approx(1.0)
        model.observe_rule("k", 3.0)
        assert model.estimate_rule("k") == pytest.approx(
            (1 - EWMA_ALPHA) * 1.0 + EWMA_ALPHA * 3.0
        )

    def test_unknown_estimates_are_none(self):
        model = CostModel()
        assert model.estimate_kind("spacing", 10.0) is None
        assert model.estimate_rule("ghost") is None

    def test_rule_entries_bounded_lru(self):
        model = CostModel()
        for index in range(MAX_RULE_ENTRIES + 10):
            model.observe_rule(f"rule-{index}", 1.0)
        assert len(model.rules) == MAX_RULE_ENTRIES
        assert "rule-0" not in model.rules  # oldest evicted
        assert f"rule-{MAX_RULE_ENTRIES + 9}" in model.rules


class TestRouting:
    def test_single_job_never_pools(self):
        model = CostModel()
        assert not model.worth_pooling(100.0, jobs=1)

    def test_break_even_threshold_rule_task(self):
        model = CostModel()
        model.observe_dispatch(1e-3)
        jobs = 4
        # A rule-granular task is a single dispatch: the saving
        # est * (1 - 1/jobs) must beat SAFETY * overhead * 1.
        threshold = BREAK_EVEN_SAFETY * 1e-3 / (1.0 - 1.0 / jobs)
        assert not model.worth_pooling(threshold * 0.9, jobs)
        assert model.worth_pooling(threshold * 1.1, jobs)

    def test_break_even_threshold_sharded_batch(self):
        model = CostModel()
        model.observe_dispatch(1e-3)
        jobs = 4
        # A sharded fan-out issues ~jobs dispatches and is billed for all
        # of them — strictly harder to win than a rule-granular task.
        threshold = BREAK_EVEN_SAFETY * 1e-3 * jobs / (1.0 - 1.0 / jobs)
        assert not model.worth_pooling(threshold * 0.9, jobs, tasks=jobs)
        assert model.worth_pooling(threshold * 1.1, jobs, tasks=jobs)
        assert model.worth_pooling(threshold * 0.9, jobs)  # one dispatch

    def test_plan_shards_amortizes_dispatch(self):
        model = CostModel()
        model.observe_dispatch(1e-3)
        target = 1e-3 * TARGET_DISPATCH_MULTIPLE  # 25 ms per shard
        # Plenty of compute: clamped to the oversubscription ceiling.
        assert model.plan_shards(100.0, num_items=1000, jobs=4) == (
            4 * SHARD_OVERSUBSCRIPTION
        )
        # Barely worth pooling: floor at one shard per worker.
        assert model.plan_shards(target * 1.5, num_items=1000, jobs=4) == 4
        # Never more shards than items.
        assert model.plan_shards(100.0, num_items=3, jobs=4) == 3

    def test_uncalibrated_plan_matches_status_quo_bounds(self):
        model = CostModel()
        got = model.plan_shards(0.5, num_items=100, jobs=4)
        assert 4 <= got <= shard_count(100, 4)


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / COSTMODEL_FILENAME)
        model = CostModel(path=path)
        model.observe_dispatch(2e-3)
        model.observe_kind("spacing", 10.0, 0.5)
        model.observe_rule("rk", 1.25)
        model.save()
        loaded = CostModel.load(path)
        assert loaded.dispatch_seconds == pytest.approx(2e-3)
        assert loaded.rates["spacing"] == pytest.approx(0.05)
        assert loaded.rules["rk"] == pytest.approx(1.25)

    def test_save_without_path_is_a_noop(self):
        CostModel().save()  # must not raise

    def test_load_missing_or_malformed_yields_fresh(self, tmp_path):
        missing = CostModel.load(str(tmp_path / "nope.json"))
        assert missing.dispatch_seconds is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert CostModel.load(str(bad)).rates == {}

    def test_load_rejects_other_versions(self, tmp_path):
        path = tmp_path / COSTMODEL_FILENAME
        path.write_text(
            json.dumps({"version": 999, "rates": {"spacing": 1.0}})
        )
        assert CostModel.load(str(path)).rates == {}

    def test_load_drops_nonpositive_entries(self, tmp_path):
        path = tmp_path / COSTMODEL_FILENAME
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "dispatch_seconds": -1.0,
                    "rates": {"spacing": 0.0, "width": 0.5},
                    "rules": {"a": "junk", "b": 2.0},
                }
            )
        )
        loaded = CostModel.load(str(path))
        assert loaded.dispatch_seconds is None
        assert loaded.rates == {"width": 0.5}
        assert loaded.rules == {"b": 2.0}


class _Store:
    def __init__(self, root):
        self.root = str(root)


class TestRegistry:
    def test_no_store_gets_private_models(self):
        assert model_for(None) is not model_for(None)

    def test_same_root_shares_one_model(self, tmp_path):
        store = _Store(tmp_path)
        first = model_for(store)
        assert model_for(_Store(tmp_path)) is first
        first.observe_dispatch(1e-3)
        assert model_for(store).dispatch_seconds == pytest.approx(1e-3)

    def test_registry_loads_persisted_calibration(self, tmp_path):
        model = CostModel(path=str(tmp_path / COSTMODEL_FILENAME))
        model.observe_kind("spacing", 10.0, 0.5)
        model.save()
        reset_models()
        loaded = model_for(_Store(tmp_path))
        assert loaded.rates["spacing"] == pytest.approx(0.05)
