import random

import pytest

from repro.geometry import EMPTY_RECT, Rect
from repro.partition import (
    margin_for_rule,
    partition_rects,
    partition_sorted_baseline,
)


class TestMargin:
    def test_values(self):
        assert margin_for_rule(0) == 0
        assert margin_for_rule(1) == 1
        assert margin_for_rule(4) == 2
        assert margin_for_rule(5) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            margin_for_rule(-1)

    @pytest.mark.parametrize("rule", [1, 2, 5, 18, 24])
    def test_margin_guarantee(self, rule):
        # Items in different rows must be > rule-1 apart: 2m+1 > rule-1.
        m = margin_for_rule(rule)
        assert 2 * m + 1 >= rule


class TestPartition:
    def test_separated_bands(self):
        rects = [Rect(0, 0, 100, 10), Rect(0, 50, 100, 60), Rect(0, 100, 100, 110)]
        part = partition_rects(rects, 5)
        assert part.num_rows == 3
        assert [row.members for row in part.rows] == [[0], [1], [2]]

    def test_close_bands_merge(self):
        rects = [Rect(0, 0, 100, 10), Rect(0, 12, 100, 20)]
        part = partition_rects(rects, 5)  # gap 2 < 5: cannot be independent
        assert part.num_rows == 1
        assert part.rows[0].members == [0, 1]

    def test_abutting_always_merge(self):
        rects = [Rect(0, 0, 10, 10), Rect(0, 10, 10, 20)]
        assert partition_rects(rects, 1).num_rows == 1

    def test_empty_rects_unassigned(self):
        rects = [Rect(0, 0, 10, 10), EMPTY_RECT]
        part = partition_rects(rects, 3)
        assert part.row_of() == {0: 0}

    def test_no_rects(self):
        assert partition_rects([], 5).num_rows == 0

    def test_row_spans_sorted(self):
        rects = [Rect(0, 100, 10, 110), Rect(0, 0, 10, 10)]
        part = partition_rects(rects, 3)
        spans = [row.span for row in part.rows]
        assert spans == sorted(spans)

    def test_largest_row(self):
        rects = [Rect(0, 0, 10, 10), Rect(0, 5, 10, 15), Rect(0, 500, 10, 510)]
        assert partition_rects(rects, 2).largest_row == 2

    @pytest.mark.parametrize("seed", range(6))
    def test_independence_guarantee(self, seed):
        """Cross-row items are always farther apart than the rule distance."""
        rng = random.Random(seed)
        rule = rng.randint(1, 30)
        rects = []
        for _ in range(120):
            x, y = rng.randint(0, 500), rng.randint(0, 500)
            rects.append(Rect(x, y, x + rng.randint(1, 50), y + rng.randint(1, 50)))
        part = partition_rects(rects, rule)
        owner = part.row_of()
        for i, a in enumerate(rects):
            for j in range(i + 1, len(rects)):
                if owner[i] != owner[j]:
                    y_gap = max(rects[j].ylo - a.yhi, a.ylo - rects[j].yhi)
                    assert y_gap >= rule, (rule, a, rects[j])

    @pytest.mark.parametrize("seed", range(4))
    def test_backends_agree(self, seed):
        rng = random.Random(50 + seed)
        rects = []
        for _ in range(200):
            x, y = rng.randint(0, 800), rng.randint(0, 800)
            rects.append(Rect(x, y, x + rng.randint(1, 30), y + rng.randint(1, 30)))
        a = partition_rects(rects, 7)
        b = partition_sorted_baseline(rects, 7)
        assert [r.members for r in a.rows] == [r.members for r in b.rows]
        assert [r.span for r in a.rows] == [r.span for r in b.rows]

    def test_members_partition_everything(self):
        rng = random.Random(9)
        rects = [
            Rect(x, y, x + 10, y + 10)
            for x, y in [(rng.randint(0, 300), rng.randint(0, 300)) for _ in range(80)]
        ]
        part = partition_rects(rects, 4)
        members = sorted(m for row in part.rows for m in row.members)
        assert members == list(range(len(rects)))
