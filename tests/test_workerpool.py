"""Warm worker pools: reuse across checks, plan spooling, fault recycling.

The tentpole property: with ``warm_pool`` enabled, the second
``Engine.check()`` of the same deck must reuse the live worker processes
(zero new PIDs), ship no plan payload (``mp_plan_compiles == 0``), skip the
pickle probes (``mp_pickle_probes == 0``), and still produce a byte-identical
report — and the PR 5 recovery ladder must keep working on a recycled pool.
"""

import multiprocessing
import random

import pytest

from repro.core import Engine, EngineOptions
from repro.core import costmodel, multiproc, workerpool
from repro.core.rules import layer
from repro.core.workerpool import WorkerPool
from repro.geometry import Polygon, Transform
from repro.layout import CellReference, Layout
from repro.util import faults

from .test_multiproc import random_via_layout


def via_layout(seed: int, *, kinds: int = 3, instances: int = 40) -> Layout:
    rng = random.Random(seed)
    layout = Layout(f"wp-vias-{seed}")
    for kind in range(kinds):
        leaf = layout.new_cell(f"leaf_{kind}")
        for _ in range(rng.randint(1, 4)):
            x, y = rng.randint(0, 120), rng.randint(0, 120)
            w, h = rng.randint(14, 36), rng.randint(14, 36)
            leaf.add_polygon(1, Polygon.from_rect_coords(x, y, x + w, y + h))
            margin = rng.randint(0, 5)
            leaf.add_polygon(
                2,
                Polygon.from_rect_coords(
                    x + margin, y + margin, x + margin + 4, y + margin + 4
                ),
            )
    top = layout.new_cell("top")
    for _ in range(instances):
        top.add_reference(
            CellReference(
                f"leaf_{rng.randrange(kinds)}",
                Transform(
                    dx=rng.randint(0, 4000),
                    dy=rng.randint(0, 4000),
                    rotation=rng.choice((0, 90, 180, 270)),
                ),
            )
        )
    layout.set_top("top")
    return layout


def _narrow(polygon):
    """Module-level predicate: picklable, so the probe has work to do."""
    return polygon.mbr.width <= 400


class _WidthUnder:
    """Callable-instance predicate: one qualname, per-instance state.

    The standard picklable form for ``ensures`` rules — and exactly the
    shape that must not collide in the plan digest: ``_WidthUnder(0)``
    and ``_WidthUnder(10_000)`` share a qualname but ship different
    pickles.
    """

    def __init__(self, limit: int) -> None:
        self.limit = limit

    def __call__(self, polygon) -> bool:
        return polygon.mbr.width <= self.limit


def deck():
    return [
        layer(1).polygons().ensures(_narrow).named("ENS"),
        layer(1).spacing().greater_than(7).named("S"),
        layer(1).width().greater_than(8).named("W"),
        layer(2).enclosure(layer(1)).greater_than(3).named("ENC"),
    ]


@pytest.fixture(autouse=True)
def _isolate(monkeypatch):
    """Fresh pool registry, probe cache, and cost models around every test."""
    monkeypatch.delenv(workerpool.WARM_POOL_ENV, raising=False)
    workerpool.shutdown_pools()
    costmodel.reset_models()
    multiproc._PROBE_CACHE.clear()
    faults.clear()
    yield
    workerpool.shutdown_pools()
    costmodel.reset_models()
    multiproc._PROBE_CACHE.clear()
    faults.clear()


def warm_options(**kw):
    kw.setdefault("mode", "multiproc")
    kw.setdefault("jobs", 2)
    kw.setdefault("warm_pool", True)
    return EngineOptions(**kw)


class TestWarmReuse:
    def test_second_check_reuses_workers_and_ships_nothing(self):
        layout = via_layout(501)
        rules = deck()
        engine = Engine(options=warm_options())
        try:
            first = engine.check(layout, rules=rules)
            pool = workerpool.get_pool(2)
            pids = pool.worker_pids()
            generation = pool.generation
            assert pids, "warm check must leave live workers behind"
            assert first.results[-1].stats["mp_plan_compiles"] == 1
            assert first.results[-1].stats["mp_pickle_probes"] >= 1

            second = engine.check(layout, rules=rules)
            assert second.to_csv() == first.to_csv()
            assert pool.worker_pids() == pids, "no new worker processes"
            assert pool.generation == generation
            stats = second.results[-1].stats
            assert stats["mp_plan_compiles"] == 0, "plan must not reship"
            assert stats["mp_pickle_probes"] == 0, "probe results memoized"
        finally:
            engine.close()
        assert workerpool.get_pool(2).worker_pids() == []

    def test_matches_sequential_reference(self):
        layout = via_layout(502)
        rules = deck()
        reference = Engine(mode="sequential").check(layout, rules=rules)
        with Engine(options=warm_options()) as engine:
            warm = engine.check(layout, rules=rules)
        for ref, got in zip(reference.results, warm.results):
            assert got.violations == ref.violations, ref.rule.name

    def test_stateful_predicates_do_not_collide_on_a_warm_pool(self):
        # Two consecutive checks whose decks differ only in a callable
        # instance's *state* must not share a plan digest — a collision
        # makes the warm pool silently run the previous check's pickled
        # predicate. cost_model=False keeps both checks on the pool (a
        # calibrated model would route the tiny rule inline and mask the
        # digest path).
        layout = via_layout(507)
        loose = [layer(1).polygons().ensures(_WidthUnder(10_000)).named("ENS")]
        strict = [layer(1).polygons().ensures(_WidthUnder(0)).named("ENS")]
        ref_loose = Engine(mode="sequential").check(layout, rules=loose)
        ref_strict = Engine(mode="sequential").check(layout, rules=strict)
        assert ref_loose.to_csv() != ref_strict.to_csv()
        with Engine(options=warm_options(cost_model=False)) as engine:
            first = engine.check(layout, rules=loose)
            second = engine.check(layout, rules=strict)
        assert first.to_csv() == ref_loose.to_csv()
        assert second.to_csv() == ref_strict.to_csv()

    def test_close_releases_every_pool_the_engine_used(self):
        # Checks under different option sets park workers under different
        # registry keys; close() must release all of them, not just the
        # key the engine's current options select.
        layout = via_layout(508, instances=10)
        rules = [layer(1).spacing().greater_than(7)]
        engine = Engine(options=warm_options(jobs=2))
        engine.check(layout, rules=rules)
        engine.options = warm_options(jobs=3)
        engine.check(layout, rules=rules)
        assert workerpool.get_pool(2).worker_pids()
        assert workerpool.get_pool(3).worker_pids()
        engine.close()
        for child in multiprocessing.active_children():
            child.join(timeout=10)
        assert multiprocessing.active_children() == []

    def test_close_releases_the_shared_pool(self):
        layout = via_layout(503, instances=10)
        engine = Engine(options=warm_options())
        engine.check(layout, rules=[layer(1).spacing().greater_than(7)])
        assert workerpool.get_pool(2).worker_pids()
        engine.close()
        for child in multiprocessing.active_children():
            child.join(timeout=10)
        assert multiprocessing.active_children() == []

    def test_env_var_enables_warm_pool(self, monkeypatch):
        monkeypatch.setenv(workerpool.WARM_POOL_ENV, "1")
        assert workerpool.warm_pool_enabled(EngineOptions(jobs=2))
        # An explicit option beats the environment, both ways.
        assert not workerpool.warm_pool_enabled(
            EngineOptions(jobs=2, warm_pool=False)
        )
        monkeypatch.setenv(workerpool.WARM_POOL_ENV, "0")
        assert workerpool.warm_pool_enabled(
            EngineOptions(jobs=2, warm_pool=True)
        )
        assert not workerpool.warm_pool_enabled(EngineOptions(jobs=2))

    def test_cold_default_leaves_no_children(self):
        layout = via_layout(504, instances=10)
        engine = Engine(options=EngineOptions(mode="multiproc", jobs=2))
        engine.check(layout, rules=[layer(1).spacing().greater_than(7)])
        for child in multiprocessing.active_children():
            child.join(timeout=10)
        assert multiprocessing.active_children() == []


class TestRecycledPoolFaults:
    def test_recovery_ladder_on_a_warm_pool(self):
        # Check 1 warms the pool; check 2 injects hangs into the recycled
        # workers and must still climb the full PR 5 ladder: timeout →
        # retry → inline fallback, with a byte-identical report.
        layout = via_layout(505)
        rules = [layer(1).width().greater_than(8).named("W")]
        baseline = Engine(mode="sequential").check(layout, rules=rules)
        warm_engine = Engine(options=warm_options())
        faulted = Engine(
            options=warm_options(
                faults="worker_hang:times=10",
                task_timeout=0.4,
                max_retries=1,
            )
        )
        try:
            first = warm_engine.check(layout, rules=rules)
            assert first.to_csv() == baseline.to_csv()
            pool = workerpool.get_pool(2)
            assert pool.worker_pids(), "check 1 must leave the pool warm"
            report = faulted.check(layout, rules=rules)
            assert report.to_csv() == baseline.to_csv()
            stats = report.results[-1].stats
            assert stats["mp_timeouts"] == 2  # first attempt + one retry
            assert stats["mp_retries"] == 1
            assert stats["mp_inline_fallbacks"] == 1
            # The timed-out check recycled the shared pool's (wedged)
            # workers instead of handing them to the next check...
            assert workerpool.get_pool(2) is pool
            assert pool.worker_pids() == []

            faults.clear()
            clean = Engine(options=warm_options())
            again = clean.check(layout, rules=rules)
            assert again.to_csv() == baseline.to_csv()
            # ...and the respawned generation re-warmed from the spool.
            assert again.results[-1].stats["mp_plan_compiles"] == 0
        finally:
            faulted.close()
            warm_engine.close()

    def test_worker_site_budgets_rearm_each_check(self):
        # shm_attach_fail budgets are consumed *inside* the workers. Warm
        # workers outlive the check, so without a per-check install epoch
        # the second check would inherit the first one's spent budget and
        # inject nothing — unlike the cold path's fresh processes. Both
        # checks must show the recovery. (random_via_layout, not this
        # module's via_layout: the shards must be big enough to ride the
        # shared-memory transport, or no attach ever happens.)
        layout = random_via_layout(509, instances=60)
        rules = [layer(1).spacing().greater_than(7).named("S")]
        baseline = Engine(mode="sequential").check(layout, rules=rules)
        options = warm_options(
            cost_model=False, faults="shm_attach_fail:times=1"
        )
        with Engine(options=options) as engine:
            first = engine.check(layout, rules=rules)
            second = engine.check(layout, rules=rules)
        assert first.to_csv() == baseline.to_csv()
        assert second.to_csv() == baseline.to_csv()
        assert first.results[-1].stats["mp_retries"] >= 1
        assert second.results[-1].stats["mp_retries"] >= 1, (
            "warm workers must re-arm worker-side fault budgets per check"
        )

    def test_worker_crash_on_recycled_pool_recovers(self):
        layout = via_layout(506)
        rules = [layer(1).spacing().greater_than(7).named("S")]
        baseline = Engine(mode="sequential").check(layout, rules=rules)
        with Engine(options=warm_options(cost_model=False)) as warm_engine:
            warm_engine.check(layout, rules=rules)
            faults.clear()
            faulted = Engine(
                options=warm_options(
                    cost_model=False, faults="worker_raise:times=1"
                )
            )
            report = faulted.check(layout, rules=rules)
            assert report.to_csv() == baseline.to_csv()
            assert report.results[-1].stats["mp_retries"] >= 1


class TestWorkerPoolUnit:
    def test_ensure_plan_ships_once(self):
        pool = WorkerPool(1)
        try:
            calls = []

            def payload():
                calls.append(1)
                return b"deck-bytes"

            path, shipped = pool.ensure_plan("digest-a", payload)
            assert shipped and calls == [1]
            again, reshipped = pool.ensure_plan("digest-a", payload)
            assert again == path and not reshipped and calls == [1]
            with open(path, "rb") as handle:
                assert handle.read() == b"deck-bytes"
        finally:
            pool.close()

    def test_rebuild_keeps_spool_and_bumps_generation(self):
        pool = WorkerPool(1)
        try:
            pool.ensure()
            first_gen = pool.generation
            path, _ = pool.ensure_plan("digest-b", lambda: b"payload")
            pool.rebuild()
            import os

            assert os.path.exists(path), "rebuild must keep the spool"
            pool.ensure()
            assert pool.generation == first_gen + 1
            _, reshipped = pool.ensure_plan("digest-b", lambda: b"payload")
            assert not reshipped
        finally:
            pool.close()

    def test_close_is_terminal(self):
        pool = WorkerPool(1)
        path, _ = pool.ensure_plan("digest-c", lambda: b"payload")
        pool.close()
        import os

        assert not os.path.exists(path)
        with pytest.raises(RuntimeError, match="closed"):
            pool.ensure()
        pool.close()  # idempotent

    def test_registry_replaces_closed_pools(self):
        first = workerpool.get_pool(1)
        assert workerpool.get_pool(1) is first
        first.close()
        replacement = workerpool.get_pool(1)
        assert replacement is not first and not replacement.closed
        workerpool.release_pool(1)
        assert workerpool.get_pool(1) is not replacement

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            WorkerPool(0)

    def test_dispatch_seconds_measures_on_request(self):
        pool = WorkerPool(1)
        try:
            assert pool.dispatch_seconds() is None  # never implicit
            pool.ensure()
            measured = pool.dispatch_seconds(measure=True)
            assert measured is not None and measured > 0
            assert pool.dispatch_seconds() == measured  # cached
        finally:
            pool.close()


def _nap(seconds):
    """Module-level task: picklable, sleeps, echoes its argument back."""
    import time as _time

    _time.sleep(seconds)
    return seconds


class TestFairDispatch:
    def test_round_robin_across_requesters(self):
        # One worker, in-flight cap 2. Requester A floods five tasks; B
        # submits one while A's batch is queued. Fair dispatch must feed
        # B's task to the pool before A's tail — under a plain FIFO, B
        # would wait behind the whole batch.
        pool = WorkerPool(1)
        try:
            results = [
                pool.apply_async(_nap, (0.8,), requester="A"),
                pool.apply_async(_nap, (0.8,), requester="A"),
                pool.apply_async(_nap, (0.0,), requester="A"),
                pool.apply_async(_nap, (0.0,), requester="A"),
                pool.apply_async(_nap, (0.0,), requester="B"),
            ]
            for result, expected in zip(results, (0.8, 0.8, 0.0, 0.0, 0.0)):
                assert result.get(60) == expected
            # A1, A2 dispatch on submission (cap 2); then the rotation
            # interleaves: A3, B1, A4 — never A3, A4, B1.
            assert list(pool.dispatch_log) == ["A", "A", "A", "B", "A"]
        finally:
            pool.close()

    def test_within_requester_order_is_preserved(self):
        pool = WorkerPool(2)
        try:
            results = [
                pool.apply_async(_nap, (i / 100.0,), requester="only")
                for i in (3, 2, 1, 0)
            ]
            values = [r.get(60) for r in results]
            assert values == [0.03, 0.02, 0.01, 0.0]
        finally:
            pool.close()

    def test_fair_timeout_excludes_queue_wait(self):
        # The task timeout meters a *worker* round trip. A fair-dispatched
        # task still queued behind other requesters has not reached a
        # worker, so its waiter must not time out — only once dispatched
        # does the clock start.
        from repro.core.workerpool import _FairResult

        proxy = _FairResult()
        outcome = []

        def waiter():
            try:
                proxy.get(timeout=0.3)
            except multiprocessing.TimeoutError:
                outcome.append("timeout")

        import threading

        thread = threading.Thread(target=waiter)
        thread.start()
        thread.join(0.8)
        assert thread.is_alive(), "queued: the timeout clock must not run"
        assert not outcome
        proxy._mark_dispatched()
        thread.join(10)
        assert outcome == ["timeout"]

    def test_rebuild_fails_dispatched_fair_tasks_fast(self):
        # Terminated workers never fire their callbacks; abandon() must
        # fail the in-flight proxies immediately (RuntimeError, not a
        # full task-timeout wait) so waiters drop into the retry ladder.
        pool = WorkerPool(1)
        try:
            proxy = pool.apply_async(_nap, (30.0,), requester="A")
            for _ in range(200):
                if pool.worker_pids():
                    break
                import time as _time

                _time.sleep(0.01)
            pool.rebuild()
            with pytest.raises(RuntimeError, match="rebuilt"):
                proxy.get(5)
        finally:
            pool.close()

    def test_direct_submission_bypasses_fair_queue(self):
        pool = WorkerPool(1)
        try:
            result = pool.apply_async(_nap, (0.0,))
            assert result.get(30) == 0.0
            assert list(pool.dispatch_log) == []
        finally:
            pool.close()
