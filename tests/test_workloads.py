import pytest

from repro.core import Engine
from repro.layout import compute_stats, flatten_layer, gdsii_from_layout, layout_from_gdsii
from repro.workloads import (
    DESIGN_NAMES,
    InjectionPlan,
    asap7,
    build_design,
    build_library,
    design_spec,
    inject_violations,
    random_hierarchical_layout,
    random_rect_layout,
)


class TestStdcells:
    def test_library_builds(self):
        cells = build_library()
        assert "INVx1" in cells and "DFFx1" in cells

    def test_cells_have_rails_and_fingers(self):
        cells = build_library()
        nand = cells["NAND2x1"]
        polys = nand.polygons(asap7.M1)
        rails = [p for p in polys if p.mbr.height == asap7.M1_RAIL_HEIGHT]
        fingers = [p for p in polys if p.mbr.width == asap7.M1_FINGER_WIDTH]
        assert len(rails) == 2 and len(fingers) == 2  # 3 sites -> 2 fingers

    def test_cells_are_clean(self):
        """Every library cell passes the full intra deck standalone."""
        from repro.layout import Layout

        for name, cell in build_library().items():
            layout = Layout(name)
            layout.add_cell(cell)
            layout.set_top(name)
            report = Engine(mode="sequential").check(layout, rules=asap7.intra_deck())
            assert report.passed, f"{name}: {report.summary()}"


class TestDesigns:
    def test_all_designs_build(self):
        for name in DESIGN_NAMES:
            layout = build_design(name)
            layout.validate()
            assert compute_stats(layout).num_flat_polygons > 0

    def test_relative_sizes_follow_paper(self):
        sizes = {
            name: compute_stats(build_design(name)).num_flat_polygons
            for name in ("uart", "ibex", "aes", "jpeg")
        }
        assert sizes["uart"] < sizes["ibex"] < sizes["aes"] < sizes["jpeg"]

    def test_jpeg_m3_densest(self):
        from repro.layout import count_flat_polygons

        jpeg = count_flat_polygons(build_design("jpeg")).get(asap7.M3, 0)
        aes = count_flat_polygons(build_design("aes")).get(asap7.M3, 0)
        assert jpeg > 3 * aes  # the Table II blow-up layer

    def test_deterministic(self):
        a = compute_stats(build_design("uart"))
        b = compute_stats(build_design("uart"))
        assert a == b

    def test_unknown_design_rejected(self):
        with pytest.raises(KeyError):
            build_design("riscv")

    def test_paper_scale_larger(self):
        ci = design_spec("uart", "ci")
        paper = design_spec("uart", "paper")
        assert paper.rows == 3 * ci.rows

    def test_designs_are_drc_clean(self, uart_layout):
        report = Engine(mode="sequential")
        deck = asap7.full_deck()
        result = report.check(uart_layout, rules=deck)
        assert result.passed, result.summary()

    def test_designs_survive_gdsii_round_trip(self, uart_layout):
        rebuilt = layout_from_gdsii(gdsii_from_layout(uart_layout))
        # GDSII has no top-cell marker; unused library cells are also roots.
        rebuilt.set_top("top")
        for layer in uart_layout.layers():
            original = sorted(p.mbr for p in flatten_layer(uart_layout, layer))
            recovered = sorted(p.mbr for p in flatten_layer(rebuilt, layer))
            assert original == recovered


class TestRuleDeck:
    def test_full_deck_names(self):
        names = [r.name for r in asap7.full_deck()]
        assert "M1.W.1" in names and "M1.S.1" in names and "V1.M1.EN.1" in names
        assert len(names) == len(set(names))

    def test_deck_partitions(self):
        assert len(asap7.intra_deck()) == 6
        assert len(asap7.spacing_deck()) == 3
        assert len(asap7.enclosure_deck()) == 3


class TestInjection:
    @pytest.mark.parametrize("kind", ["spacing", "width", "area", "enclosure"])
    def test_each_kind_recovered_exactly(self, kind):
        layout = build_design("uart")
        plan = InjectionPlan(**{kind: 4})
        expected = inject_violations(layout, plan, seed=1)
        assert len(expected) == 4
        rules = {
            "spacing": asap7.spacing_rule(asap7.M2),
            "width": asap7.width_rule(asap7.M2),
            "area": asap7.area_rule(asap7.M2),
            "enclosure": asap7.enclosure_rule(asap7.V2, asap7.M2),
        }
        report = Engine(mode="sequential").check(layout, rules=[rules[kind]])
        assert report.results[0].violation_set() == frozenset(expected)

    def test_injection_dirty_then_clean_elsewhere(self):
        layout = build_design("uart")
        inject_violations(layout, InjectionPlan(spacing=2), layer=asap7.M2, seed=5)
        # M1 and M3 stay clean.
        report = Engine(mode="sequential").check(
            layout, rules=[asap7.spacing_rule(asap7.M1), asap7.spacing_rule(asap7.M3)]
        )
        assert report.passed


class TestRandomGenerators:
    def test_random_rect_layout(self):
        layout = random_rect_layout(50, seed=3)
        assert len(flatten_layer(layout, 1)) == 50

    def test_random_hierarchical_layout(self):
        layout = random_hierarchical_layout(instances=30, seed=4)
        layout.validate()
        assert compute_stats(layout).num_instances == 31

    def test_seed_determinism(self):
        a = flatten_layer(random_rect_layout(20, seed=7), 1)
        b = flatten_layer(random_rect_layout(20, seed=7), 1)
        assert [p.mbr for p in a] == [p.mbr for p in b]
