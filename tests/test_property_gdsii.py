"""Property-based GDSII round trips on randomly generated libraries."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.gdsii import (
    GdsAref,
    GdsBoundary,
    GdsLibrary,
    GdsPath,
    GdsSref,
    GdsStrans,
    GdsStructure,
    read_bytes,
    write_bytes,
)

coords = st.integers(min_value=-100_000, max_value=100_000)
layer_numbers = st.integers(min_value=0, max_value=255)


@st.composite
def rect_xy(draw):
    x = draw(coords)
    y = draw(coords)
    w = draw(st.integers(min_value=1, max_value=5_000))
    h = draw(st.integers(min_value=1, max_value=5_000))
    return [(x, y), (x, y + h), (x + w, y + h), (x + w, y)]


@st.composite
def boundaries(draw):
    return GdsBoundary(
        layer=draw(layer_numbers),
        datatype=draw(st.integers(min_value=0, max_value=63)),
        xy=draw(rect_xy()),
        properties=draw(
            st.dictionaries(
                st.integers(min_value=1, max_value=8),
                st.text(alphabet="abcXYZ09", min_size=0, max_size=12),
                max_size=2,
            )
        ),
    )


@st.composite
def paths(draw):
    x = draw(coords)
    y = draw(coords)
    length = draw(st.integers(min_value=50, max_value=2_000))
    return GdsPath(
        layer=draw(layer_numbers),
        datatype=0,
        width=2 * draw(st.integers(min_value=1, max_value=20)),
        xy=[(x, y), (x + length, y)],
    )


@st.composite
def strans(draw):
    return GdsStrans(
        mirror_x=draw(st.booleans()),
        magnification=draw(st.sampled_from([1.0, 2.0, 4.0])),
        angle=draw(st.sampled_from([0.0, 90.0, 180.0, 270.0])),
    )


@st.composite
def libraries(draw):
    leaf_elements = draw(st.lists(st.one_of(boundaries(), paths()), min_size=1, max_size=4))
    leaf = GdsStructure("LEAF", list(leaf_elements))
    top_elements = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        top_elements.append(
            GdsSref("LEAF", (draw(coords), draw(coords)), draw(strans()))
        )
    if draw(st.booleans()):
        cols = draw(st.integers(min_value=1, max_value=4))
        rows = draw(st.integers(min_value=1, max_value=4))
        ox, oy = draw(coords), draw(coords)
        step_x = draw(st.integers(min_value=1, max_value=500))
        step_y = draw(st.integers(min_value=1, max_value=500))
        top_elements.append(
            GdsAref(
                "LEAF",
                columns=cols,
                rows=rows,
                xy=[(ox, oy), (ox + cols * step_x, oy), (ox, oy + rows * step_y)],
            )
        )
    top = GdsStructure("TOP", top_elements)
    return GdsLibrary(name="PROP", structures=[leaf, top])


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(libraries())
def test_round_trip_preserves_everything(library):
    reloaded = read_bytes(write_bytes(library))
    assert reloaded.structure_names() == library.structure_names()
    for original, copied in zip(library.structures, reloaded.structures):
        assert len(original.elements) == len(copied.elements)
        for a, b in zip(original.elements, copied.elements):
            assert type(a) is type(b)
            if isinstance(a, GdsBoundary):
                assert a.xy == b.xy and a.layer == b.layer
                assert a.properties == b.properties
            elif isinstance(a, GdsPath):
                assert a.xy == b.xy and a.width == b.width
            elif isinstance(a, GdsSref):
                assert a.origin == b.origin
                assert a.strans.mirror_x == b.strans.mirror_x
                assert a.strans.angle == b.strans.angle
                assert a.strans.magnification == b.strans.magnification
            elif isinstance(a, GdsAref):
                assert (a.columns, a.rows) == (b.columns, b.rows)
                assert a.xy == b.xy


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(libraries())
def test_second_round_trip_is_byte_stable(library):
    once = write_bytes(library)
    assert write_bytes(read_bytes(once)) == once
