"""CheckPlan IR + Backend protocol: compilation, equivalence, caching.

The tentpole property of the plan pipeline: every execution path —
sequential CPU sweeps, fused/per-row simulated-GPU kernels, and the
windowed gatherer — consumes the same compiled plan and produces the same
*canonical violation list* (reports sort violations totally, so list
equality is set equality).
"""

import random

import pytest

from repro.core import (
    Backend,
    Engine,
    EngineOptions,
    check_window,
    compile_plan,
    kind_spec,
    make_backend,
)
from repro.core.plan import ALL_MODES, KIND_SPECS, MODE_WINDOWED
from repro.core.rules import Rule, RuleKind, layer
from repro.geometry import Polygon, Rect, Transform
from repro.layout import CellReference, Layout
from repro.workloads import random_hierarchical_layout


def two_layer_layout(seed: int, *, kinds: int = 3, instances: int = 30) -> Layout:
    """Random hierarchical metal (layer 1) + via (layer 2) layout.

    Vias sit inside their metal with a random margin, so enclosure and
    overlap rules find both passing and failing instances; metals are close
    enough for spacing/corner rules to fire.
    """
    rng = random.Random(seed)
    layout = Layout(f"planned-{seed}")
    for kind in range(kinds):
        leaf = layout.new_cell(f"leaf_{kind}")
        for _ in range(rng.randint(1, 4)):
            x, y = rng.randint(0, 120), rng.randint(0, 120)
            w, h = rng.randint(12, 36), rng.randint(12, 36)
            leaf.add_polygon(1, Polygon.from_rect_coords(x, y, x + w, y + h))
            margin = rng.randint(0, 5)
            leaf.add_polygon(
                2,
                Polygon.from_rect_coords(
                    x + margin, y + margin, x + margin + 4, y + margin + 4
                ),
            )
    top = layout.new_cell("top")
    for _ in range(instances):
        top.add_reference(
            CellReference(
                f"leaf_{rng.randrange(kinds)}",
                Transform(
                    dx=rng.randint(0, 3000),
                    dy=rng.randint(0, 3000),
                    rotation=rng.choice((0, 90, 180, 270)),
                    mirror_x=rng.random() < 0.5,
                ),
            )
        )
    layout.set_top("top")
    return layout


def all_kind_rules():
    """One rule of every registered kind, exercising both layers."""
    return [
        layer(1).polygons().is_rectilinear().named("SHAPE"),
        layer(1).width().greater_than(14).named("W"),
        layer(1).spacing().greater_than(9).named("S"),
        layer(1).area().greater_than(400).named("A"),
        layer(1).corner_spacing().greater_than(7).named("C"),
        # Rotation-invariant predicate (instances are placed under every
        # rigid transform, and intra results are reused across instances).
        layer(1).polygons().ensures(
            lambda p: min(p.mbr.xhi - p.mbr.xlo, p.mbr.yhi - p.mbr.ylo) >= 13
        ).named("E"),
        layer(1).same_mask_spacing().greater_than(9).named("DP"),
        layer(2).enclosure(layer(1)).greater_than(3).named("ENC"),
        layer(2).overlap(layer(1)).greater_than(12).named("OVL"),
    ]


ALL_KINDS = frozenset(RuleKind)


class TestKindRegistry:
    def test_every_rule_kind_has_a_spec(self):
        assert frozenset(KIND_SPECS) == ALL_KINDS

    def test_specs_carry_flat_procedures(self):
        for kind in RuleKind:
            assert callable(kind_spec(kind).flat), kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(NotImplementedError):
            kind_spec("astral-projection")

    def test_deck_covers_every_kind(self):
        # Guard: the equivalence tests below really do span the registry.
        assert {r.kind for r in all_kind_rules()} == ALL_KINDS


class TestPlanCompilation:
    def test_compile_resolves_specs_and_dependencies(self):
        layout = two_layer_layout(1)
        plan = compile_plan(layout, all_kind_rules())
        assert [c.rule.name for c in plan.compiled] == [
            r.name for r in all_kind_rules()
        ]
        for compiled in plan.compiled:
            assert compiled.spec is kind_spec(compiled.rule.kind)
        deps = plan.dependencies()
        # Geometric rules on layer 1 are gated on that layer's shape rule.
        assert deps["W"] == ("SHAPE",)
        assert deps["SHAPE"] == ()
        # Layer-2 rules have no layer-2 shape rule to wait for.
        assert deps["ENC"] == ()

    def test_layer_groups(self):
        plan = compile_plan(two_layer_layout(2), all_kind_rules())
        groups = plan.layer_groups()
        assert {c.name for c in groups[1]} >= {"SHAPE", "W", "S", "A"}
        assert {c.name for c in groups[2]} == {"ENC", "OVL"}

    def test_empty_deck_rejected(self):
        with pytest.raises(ValueError, match="no rules"):
            compile_plan(two_layer_layout(3), [])

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            compile_plan(
                two_layer_layout(3),
                [layer(1).width().greater_than(5)],
                mode="quantum",
            )

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_all_modes_compile(self, mode):
        plan = compile_plan(
            two_layer_layout(4), [layer(1).width().greater_than(5)], mode=mode
        )
        assert plan.mode == mode

    def test_backends_satisfy_protocol(self):
        layout = two_layer_layout(5)
        rules = [layer(1).spacing().greater_than(8)]
        for mode in ALL_MODES:
            plan = compile_plan(layout, rules, mode=mode)
            backend = make_backend(
                plan,
                window=Rect(0, 0, 100, 100) if mode == MODE_WINDOWED else None,
            )
            assert isinstance(backend, Backend), mode

    def test_windowed_backend_needs_window(self):
        plan = compile_plan(
            two_layer_layout(5),
            [layer(1).spacing().greater_than(8)],
            mode=MODE_WINDOWED,
        )
        with pytest.raises(ValueError, match="window"):
            make_backend(plan)


class TestEngineOptionsValidation:
    def test_num_streams_must_be_positive(self):
        with pytest.raises(ValueError, match="num_streams must be at least 1"):
            EngineOptions(num_streams=0)

    def test_negative_brute_force_threshold_rejected(self):
        with pytest.raises(ValueError, match="brute_force_threshold"):
            EngineOptions(brute_force_threshold=-1)

    def test_zero_threshold_and_one_stream_accepted(self):
        options = EngineOptions(num_streams=1, brute_force_threshold=0)
        assert options.num_streams == 1 and options.brute_force_threshold == 0

    def test_engine_does_not_revalidate(self):
        # Mode validation lives in EngineOptions/compile_plan alone; a valid
        # options object passes straight through Engine.
        assert Engine(options=EngineOptions(mode="parallel")).options.mode == "parallel"


def window_rules(rule: Rule):
    """A rule plus the distance that bounds its violation markers."""
    reach = rule.value if rule.value else 0
    return rule, reach


class TestWindowedEquivalenceAllKinds:
    """check_window == full check then filter, for every rule kind."""

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize(
        "rule", all_kind_rules(), ids=[r.name for r in all_kind_rules()]
    )
    def test_window_matches_filtered_full_check(self, rule, seed):
        layout = two_layer_layout(seed, instances=24)
        full = Engine(mode="sequential").check(layout, rules=[rule])
        for window in (
            Rect(0, 0, 900, 900),
            Rect(500, 500, 2200, 1700),
            Rect(-100, 1200, 3400, 3400),
        ):
            windowed = check_window(layout, window, rules=[rule])
            expected = [
                v for v in full.results[0].violations if v.region.overlaps(window)
            ]
            # Canonical sort makes plain list comparison exact.
            assert windowed.results[0].violations == expected, (rule.name, window)

    @pytest.mark.parametrize("seed", range(2))
    def test_window_over_everything_equals_full(self, seed):
        layout = two_layer_layout(40 + seed)
        rules = all_kind_rules()
        window = Rect(-10_000, -10_000, 50_000, 50_000)
        full = Engine(mode="sequential").check(layout, rules=rules)
        windowed = check_window(layout, window, rules=rules)
        for fr, wr in zip(full.results, windowed.results):
            assert fr.violations == wr.violations, fr.rule.name


class TestBackendEquivalence:
    """sequential == parallel(fused) == parallel(per-row) == windowed."""

    @pytest.mark.parametrize("seed", range(3))
    def test_all_backends_same_canonical_lists(self, seed):
        layout = two_layer_layout(70 + seed)
        rules = all_kind_rules()
        window = Rect(-10_000, -10_000, 50_000, 50_000)
        reports = {
            "sequential": Engine(mode="sequential").check(layout, rules=rules),
            "fused": Engine(
                options=EngineOptions(mode="parallel", fuse_rows=True)
            ).check(layout, rules=rules),
            "per-row": Engine(
                options=EngineOptions(mode="parallel", fuse_rows=False)
            ).check(layout, rules=rules),
            "windowed": check_window(layout, window, rules=rules),
        }
        reference = reports["sequential"]
        for name, report in reports.items():
            for got, want in zip(report.results, reference.results):
                # CheckResult canonicalizes: list equality == set equality.
                assert got.violations == want.violations, (name, want.rule.name)

    def test_single_layer_random_layouts(self):
        for seed in range(3):
            layout = random_hierarchical_layout(instances=35, seed=100 + seed)
            rules = [
                layer(1).spacing().greater_than(7).named("S"),
                layer(1).width().greater_than(8).named("W"),
            ]
            seq = Engine(mode="sequential").check(layout, rules=rules)
            par = Engine(mode="parallel").check(layout, rules=rules)
            for a, b in zip(seq.results, par.results):
                assert a.violations == b.violations, a.rule.name


class TestPlanCacheReuse:
    def test_second_rule_on_same_layer_does_not_repack(self):
        """Same layer + same margin => the plan's pack cache serves rule 2."""
        layout = random_hierarchical_layout(instances=40, seed=11)
        rules = [
            layer(1).spacing().greater_than(7).named("S1"),
            layer(1).spacing().greater_than(7).named("S2"),
        ]
        plan = compile_plan(layout, rules, EngineOptions(mode="parallel"))
        backend = make_backend(plan)
        first = backend.run(plan.rules[0])
        misses_after_first = plan.caches.pack.misses
        second = backend.run(plan.rules[1])
        assert plan.caches.pack.misses == misses_after_first  # zero repacking
        assert plan.caches.pack.hits > 0
        assert first == second

    def test_backends_share_plan_caches(self):
        layout = random_hierarchical_layout(instances=30, seed=12)
        rule = layer(1).spacing().greater_than(7)
        plan = compile_plan(layout, [rule], EngineOptions(mode="parallel"))
        parallel = make_backend(plan)
        parallel.run(rule)
        misses = plan.caches.pack.misses
        # A sequential backend over the same plan reuses the level items.
        from repro.core.sequential import SequentialBackend

        sequential = SequentialBackend(plan)
        sequential.run(rule)
        assert plan.caches.pack.hits > 0
        assert plan.caches.pack.misses >= misses

    def test_engine_reports_cache_stats(self):
        layout = random_hierarchical_layout(instances=30, seed=13)
        engine = Engine(mode="parallel")
        report = engine.check(
            layout,
            rules=[
                layer(1).spacing().greater_than(7).named("S1"),
                layer(1).spacing().greater_than(7).named("S2"),
            ],
        )
        assert report.results[-1].stats["pack_cache_hits"] > 0


class TestSchedulerDrivenExecution:
    def test_shape_rule_runs_before_dependents(self):
        layout = two_layer_layout(21)
        # Deck lists the shape rule LAST; the scheduler must run it first.
        rules = [
            layer(1).width().greater_than(10).named("W"),
            layer(1).polygons().is_rectilinear().named("SHAPE"),
        ]
        engine = Engine(mode="sequential")
        report, analysis = engine.check_with_task_graph(layout, rules=rules)
        # Report preserves deck order...
        assert [r.rule.name for r in report.results] == ["W", "SHAPE"]
        # ...while the task graph carries the dependency edge.
        assert analysis.tasks and {t.name for t in analysis.tasks} == {"W", "SHAPE"}
        graph_deps = {t.name: tuple(t.depends_on) for t in analysis.tasks}
        assert graph_deps["W"] == ("SHAPE",)

    def test_plain_check_matches_task_graph_check(self):
        layout = two_layer_layout(22)
        rules = all_kind_rules()
        a = Engine(mode="sequential").check(layout, rules=rules)
        b, _ = Engine(mode="sequential").check_with_task_graph(layout, rules=rules)
        for ra, rb in zip(a.results, b.results):
            assert ra.violations == rb.violations, ra.rule.name


class TestCanonicalOrder:
    def test_report_violations_sorted_canonically(self):
        from repro.checks.base import violation_sort_key

        layout = two_layer_layout(31)
        report = Engine(mode="sequential").check(layout, rules=all_kind_rules())
        for result in report.results:
            keys = [violation_sort_key(v) for v in result.violations]
            assert keys == sorted(keys), result.rule.name
            assert len(set(result.violations)) == len(result.violations)
