import random

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import Polygon, Rect, Transform
from repro.gpu.kernels import pack_edges
from repro.hierarchy import HierarchyTree
from repro.hierarchy.edgepack import (
    HierarchicalEdgePacker,
    HierarchicalRectPacker,
    transform_pair,
    transform_rects,
)
from repro.layout import CellReference, Layout, Repetition
from repro.layout.flatten import flatten_layer


def edge_set(buf):
    return sorted(
        zip(buf.fixed.tolist(), buf.lo.tolist(), buf.hi.tolist(), buf.interior.tolist())
    )


def poly_groups(*bufs):
    groups = {}
    for buf in bufs:
        for f, lo, hi, i, p in zip(
            buf.fixed.tolist(), buf.lo.tolist(), buf.hi.tolist(),
            buf.interior.tolist(), buf.poly.tolist(),
        ):
            groups.setdefault(p, []).append((buf.vertical, f, lo, hi, i))
    return sorted(tuple(sorted(v)) for v in groups.values())


def random_layout(seed: int) -> Layout:
    rng = random.Random(seed)
    layout = Layout(f"rand-{seed}")
    leaf = layout.new_cell("leaf")
    leaf.add_polygon(1, Polygon.from_rect_coords(0, 0, 10, 30))
    leaf.add_polygon(1, Polygon([(0, 40), (0, 70), (20, 70), (20, 60), (10, 60), (10, 40)]))
    mid = layout.new_cell("mid")
    for i in range(3):
        mid.add_reference(
            CellReference(
                "leaf",
                Transform(
                    dx=i * 60,
                    dy=0,
                    rotation=rng.choice([0, 90, 180, 270]),
                    mirror_x=rng.random() < 0.5,
                ),
            )
        )
    top = layout.new_cell("top")
    for i in range(4):
        top.add_reference(
            CellReference(
                "mid",
                Transform(
                    dx=i * 300,
                    dy=i * 40,
                    rotation=rng.choice([0, 90, 180, 270]),
                    mirror_x=rng.random() < 0.5,
                ),
            )
        )
    top.add_reference(
        CellReference("leaf", Transform(dx=2000), Repetition(2, 3, (50, 0), (0, 100)))
    )
    top.add_polygon(1, Polygon.from_rect_coords(-100, -100, -50, -60))
    layout.set_top("top")
    return layout


class TestEdgePackerParity:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_flatten_then_pack(self, seed):
        layout = random_layout(seed)
        tree = HierarchyTree(layout)
        pair = HierarchicalEdgePacker(tree, 1).buffer_of("top")
        reference = pack_edges(flatten_layer(layout, 1))
        assert edge_set(pair.vertical) == edge_set(reference["v"])
        assert edge_set(pair.horizontal) == edge_set(reference["h"])

    @pytest.mark.parametrize("seed", range(4))
    def test_polygon_grouping_preserved(self, seed):
        layout = random_layout(seed)
        tree = HierarchyTree(layout)
        pair = HierarchicalEdgePacker(tree, 1).buffer_of("top")
        flat = flatten_layer(layout, 1)
        reference = pack_edges(flat)
        assert pair.num_polygons == len(flat)
        assert poly_groups(pair.vertical, pair.horizontal) == poly_groups(
            reference["v"], reference["h"]
        )

    def test_memoised_per_definition(self):
        layout = random_layout(0)
        tree = HierarchyTree(layout)
        packer = HierarchicalEdgePacker(tree, 1)
        first = packer.buffer_of("leaf")
        assert packer.buffer_of("leaf") is first

    def test_fractional_magnification_rejected(self):
        from fractions import Fraction

        pair = HierarchicalEdgePacker(
            HierarchyTree(random_layout(0)), 1
        ).buffer_of("leaf")
        with pytest.raises(GeometryError):
            transform_pair(pair, Transform(magnification=Fraction(1, 2)), 0)


class TestTransformPair:
    @pytest.mark.parametrize("rotation", [0, 90, 180, 270])
    @pytest.mark.parametrize("mirror", [False, True])
    def test_single_polygon_all_transforms(self, rotation, mirror):
        poly = Polygon([(0, 0), (0, 30), (10, 30), (10, 10), (25, 10), (25, 0)])
        t = Transform(dx=13, dy=-7, rotation=rotation, mirror_x=mirror)
        packed = pack_edges([poly])
        from repro.hierarchy.edgepack import EdgeBufferPair

        pair = EdgeBufferPair(packed["v"], packed["h"], 1)
        moved = transform_pair(pair, t, 0)
        expected = pack_edges([poly.transformed(t)])
        assert edge_set(moved.vertical) == edge_set(expected["v"])
        assert edge_set(moved.horizontal) == edge_set(expected["h"])


class TestRectPacker:
    def test_matches_flat_mbrs(self):
        layout = random_layout(1)
        tree = HierarchyTree(layout)
        buf = HierarchicalRectPacker(tree, 1).buffer_of("top")
        flat = sorted(tuple(p.mbr) for p in flatten_layer(layout, 1))
        packed = sorted(map(tuple, buf.rects.tolist()))
        assert packed == flat

    def test_all_rect_flag(self):
        layout = random_layout(2)  # contains an L-shape
        tree = HierarchyTree(layout)
        assert not HierarchicalRectPacker(tree, 1).buffer_of("top").all_rect

        rect_only = Layout("rects")
        c = rect_only.new_cell("c")
        c.add_polygon(1, Polygon.from_rect_coords(0, 0, 5, 5))
        rect_only.set_top("c")
        tree2 = HierarchyTree(rect_only)
        assert HierarchicalRectPacker(tree2, 1).buffer_of("c").all_rect

    @pytest.mark.parametrize("rotation", [0, 90, 180, 270])
    def test_transform_rects(self, rotation):
        t = Transform(dx=5, dy=9, rotation=rotation, mirror_x=True)
        rects = np.asarray([[0, 0, 10, 4], [20, 30, 22, 50]], dtype=np.int64)
        moved = transform_rects(rects, t)
        for row_in, row_out in zip(rects, moved):
            expected = t.apply_rect(Rect(*map(int, row_in)))
            assert tuple(map(int, row_out)) == tuple(expected)
