"""True incremental re-check: diff-driven splicing equals the cold check."""

import json

import pytest

from repro.core import Engine, EngineOptions
from repro.core.incremental import MODE_RECHECK, recheck
from repro.core.reportcache import ReportCache, deck_digest, report_key
from repro.core.packstore import PackStore
from repro.core.rules import layer, polygons
from repro.geometry import Polygon, Rect, Transform
from repro.layout.cell import CellReference
from repro.workloads import asap7, build_design

# Deck exercising every splice-sensitive kind the issue names: spacing,
# width, enclosure, corner — plus area for an intra rule with planted hits.
DECK = [
    layer(asap7.M1).width().greater_than(18),
    layer(asap7.M1).spacing().greater_than(21),
    layer(asap7.M1).corner_spacing().greater_than(10),
    layer(asap7.M1).area().greater_than(1000),
    layer(asap7.M2).spacing().greater_than(21),
    layer(asap7.V1).enclosure(layer(asap7.M1)).greater_than(5),
]


def edit_add_top_polygon(layout):
    """A skinny wire near the origin: width + area + spacing trouble."""
    layout.top_cell().add_polygon(
        asap7.M1, Polygon.from_rect_coords(40, 40, 52, 90)
    )


def edit_stdcell_definition(layout):
    """Touch one cell definition: dirt at every instance placement."""
    name = sorted(
        n for n, c in layout.cells.items() if c.polygons(asap7.M1) and n != "top"
    )[0]
    cell = layout.cells[name]
    anchor = cell.polygons(asap7.M1)[0].mbr
    cell.add_polygon(
        asap7.M1,
        Polygon.from_rect_coords(
            anchor.xhi + 2, anchor.ylo, anchor.xhi + 14, anchor.ylo + 30
        ),
    )


def edit_remove_top_polygon(layout):
    # uart's top cell routes M2 locally (M1 lives inside the stdcells).
    layout.top_cell().polygons(asap7.M2).pop()


def edit_add_instance(layout):
    name = sorted(
        n for n, c in layout.cells.items() if c.polygons(asap7.M1) and n != "top"
    )[0]
    layout.top_cell().add_reference(
        CellReference(name, Transform(dx=31, dy=463))
    )


EDITS = {
    "add-top-polygon": edit_add_top_polygon,
    "edit-stdcell": edit_stdcell_definition,
    "remove-top-polygon": edit_remove_top_polygon,
    "add-instance": edit_add_instance,
}


def versions(*edits):
    """(old, new) uart builds with ``edits`` applied to the new version."""
    old = build_design("uart")
    new = build_design("uart")
    for edit in edits:
        edit(new)
    return old, new


class TestSpliceEqualsColdCheck:
    @pytest.mark.parametrize("edit", sorted(EDITS), ids=sorted(EDITS))
    def test_spliced_report_byte_identical(self, edit):
        old, new = versions(EDITS[edit])
        engine = Engine(mode="sequential")
        baseline = engine.check(old, rules=DECK)
        outcome = recheck(old, new, rules=DECK, cached=baseline)
        cold = engine.check(new, rules=DECK)
        assert outcome.report.to_csv() == cold.to_csv()
        assert outcome.report.mode == MODE_RECHECK

    def test_edit_actually_rechecks_incrementally(self):
        old, new = versions(edit_add_top_polygon)
        baseline = Engine(mode="sequential").check(old, rules=DECK)
        outcome = recheck(old, new, rules=DECK, cached=baseline)
        kinds = set(outcome.disposition.values())
        assert "windowed" in kinds  # M1 rules re-ran in the dirty halo
        # The V1 layer is untouched, but enclosure involves M1 → windowed;
        # nothing in this deck needed a full re-run.
        assert "full" not in kinds

    def test_fixing_a_violation_drops_it_from_the_splice(self):
        old = build_design("uart")
        bad = Polygon.from_rect_coords(40, 40, 52, 90)
        old.top_cell().add_polygon(asap7.M1, bad)
        new = build_design("uart")  # the fix: the bad wire is gone
        engine = Engine(mode="sequential")
        baseline = engine.check(old, rules=DECK)
        assert not baseline.passed
        outcome = recheck(old, new, rules=DECK, cached=baseline)
        cold = engine.check(new, rules=DECK)
        assert outcome.report.to_csv() == cold.to_csv()

    def test_coloring_rule_full_rerun_still_exact(self):
        deck = DECK + [layer(asap7.M1).same_mask_spacing().greater_than(21)]
        old, new = versions(edit_add_top_polygon)
        engine = Engine(mode="sequential")
        baseline = engine.check(old, rules=deck)
        outcome = recheck(old, new, rules=deck, cached=baseline)
        assert outcome.disposition[deck[-1].name] == "full"
        assert outcome.report.to_csv() == engine.check(new, rules=deck).to_csv()

    def test_verify_flag_asserts_equality(self):
        old, new = versions(edit_stdcell_definition)
        baseline = Engine(mode="sequential").check(old, rules=DECK)
        outcome = recheck(old, new, rules=DECK, cached=baseline, verify=True)
        assert outcome.reference is not None
        assert outcome.report.to_csv() == outcome.reference.to_csv()

    def test_clean_diff_reuses_everything(self):
        old, new = versions()
        baseline = Engine(mode="sequential").check(old, rules=DECK)
        outcome = recheck(old, new, rules=DECK, cached=baseline)
        assert set(outcome.disposition.values()) == {"cached"}
        assert outcome.report.to_csv() == baseline.to_csv()


class TestEngineRecheck:
    def test_engine_facade(self):
        old, new = versions(edit_add_top_polygon)
        engine = Engine(mode="sequential")
        baseline = engine.check(old, rules=DECK)
        report = engine.recheck(old, new, rules=DECK, cached=baseline)
        assert report.to_csv() == engine.check(new, rules=DECK).to_csv()
        assert engine.last_recheck is not None
        assert engine.last_recheck.report is report

    def test_cold_start_without_baseline(self):
        old, new = versions(edit_add_top_polygon)
        engine = Engine(mode="sequential")
        report = engine.recheck(old, new, rules=DECK)
        assert set(engine.last_recheck.disposition.values()) == {"cold"}
        assert report.to_csv() == engine.check(new, rules=DECK).to_csv()


class TestReportCacheRoundTrip:
    def test_check_populates_and_recheck_hits(self, tmp_path):
        options = EngineOptions(cache_dir=str(tmp_path))
        old, new = versions(edit_add_top_polygon)
        Engine(options=options).check(old, rules=DECK)  # populates the cache
        outcome = recheck(old, new, rules=DECK, options=options)
        assert outcome.cache_hit
        assert "windowed" in set(outcome.disposition.values())
        cold = Engine(mode="sequential").check(new, rules=DECK)
        assert outcome.report.to_csv() == cold.to_csv()

    def test_chained_edits_keep_hitting(self, tmp_path):
        options = EngineOptions(cache_dir=str(tmp_path))
        v0 = build_design("uart")
        v1 = build_design("uart")
        edit_add_top_polygon(v1)
        v2 = build_design("uart")
        edit_add_top_polygon(v2)
        edit_stdcell_definition(v2)
        Engine(options=options).check(v0, rules=DECK)
        first = recheck(v0, v1, rules=DECK, options=options)
        assert first.cache_hit
        second = recheck(v1, v2, rules=DECK, options=options)
        assert second.cache_hit  # the spliced v1 report was stored
        cold = Engine(mode="sequential").check(v2, rules=DECK)
        assert second.report.to_csv() == cold.to_csv()

    def test_cold_miss_stores_for_next_time(self, tmp_path):
        options = EngineOptions(cache_dir=str(tmp_path))
        old, new = versions(edit_add_top_polygon)
        outcome = recheck(old, new, rules=DECK, options=options)
        assert not outcome.cache_hit
        assert set(outcome.disposition.values()) == {"cold"}
        # The new version's report is now cached: rechecking new->new hits.
        again = recheck(new, new, rules=DECK, options=options)
        assert again.cache_hit
        assert set(again.disposition.values()) == {"cached"}

    def test_unpicklable_predicate_disables_caching(self, tmp_path):
        options = EngineOptions(cache_dir=str(tmp_path))
        deck = DECK + [polygons().ensures(lambda p: True)]
        assert deck_digest(deck) is None
        old, new = versions(edit_add_top_polygon)
        Engine(options=options).check(old, rules=deck)
        outcome = recheck(old, new, rules=deck, options=options)
        assert not outcome.cache_hit  # honest miss, cold re-check
        cold = Engine(mode="sequential").check(new, rules=deck)
        assert outcome.report.to_csv() == cold.to_csv()

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        options = EngineOptions(cache_dir=str(tmp_path))
        old, _ = versions()
        engine = Engine(options=options)
        engine.check(old, rules=DECK)
        store = PackStore(str(tmp_path))
        cache = ReportCache(store)
        digests = {
            L: engine.last_plan.caches.layer_digest(L) for L in old.layers()
        }
        key = report_key(deck_digest(DECK), digests)
        path = cache._path(key)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{not json")
        assert cache.load(key, DECK) is None
        assert cache.misses == 1

    def test_cache_round_trips_violations_exactly(self, tmp_path):
        options = EngineOptions(cache_dir=str(tmp_path))
        old = build_design("uart")
        edit_add_top_polygon(old)  # a report with real violations
        engine = Engine(options=options)
        report = engine.check(old, rules=DECK)
        digests = {
            L: engine.last_plan.caches.layer_digest(L) for L in old.layers()
        }
        key = report_key(deck_digest(DECK), digests)
        loaded = ReportCache(PackStore(str(tmp_path))).load(key, DECK)
        assert loaded is not None
        assert loaded.to_csv() == report.to_csv()


class TestReportJson:
    def test_schema_and_stability(self):
        old = build_design("uart")
        edit_add_top_polygon(old)
        report = Engine(mode="sequential").check(old, rules=DECK)
        payload = json.loads(report.to_json())
        assert payload["layout"] == "uart"
        assert payload["mode"] == "sequential"
        assert payload["total_violations"] == report.total_violations
        assert [r["rule"] for r in payload["results"]] == [
            r.rule.name for r in report.results
        ]
        entry = payload["results"][1]
        assert entry["kind"] == "spacing"
        assert entry["layer"] == asap7.M1
        for violation in entry["violations"]:
            xlo, ylo, xhi, yhi = violation["region"]
            assert xlo <= xhi and ylo <= yhi
            assert violation["measured"] < violation["required"]

    def test_json_identical_across_backends(self):
        old = build_design("uart")
        edit_add_top_polygon(old)
        seq = Engine(mode="sequential").check(old, rules=DECK)
        par = Engine(mode="parallel").check(old, rules=DECK)

        def squash(report):
            payload = json.loads(report.to_json())
            payload["mode"] = "-"
            for entry in payload["results"]:
                entry["seconds"] = 0
                entry["stats"] = {}
            return json.dumps(payload, sort_keys=True)

        assert squash(seq) == squash(par)
