from repro.checks import (
    ViolationKind,
    check_spacing,
    spacing_notch_violations,
    spacing_pair_violations,
)
from repro.geometry import Polygon, Rect


def rect(x1, y1, x2, y2):
    return Polygon.from_rect_coords(x1, y1, x2, y2)


class TestPairSpacing:
    def test_close_pair_flagged(self):
        a = rect(0, 0, 10, 100)
        b = rect(15, 0, 25, 100)
        violations = spacing_pair_violations(a, b, 1, 8)
        assert len(violations) == 1
        v = violations[0]
        assert v.kind is ViolationKind.SPACING
        assert v.measured == 5
        assert v.region == Rect(10, 0, 15, 100)

    def test_exact_spacing_passes(self):
        a = rect(0, 0, 10, 100)
        b = rect(15, 0, 25, 100)
        assert spacing_pair_violations(a, b, 1, 5) == []

    def test_vertical_gap(self):
        a = rect(0, 0, 100, 10)
        b = rect(0, 13, 100, 20)
        violations = spacing_pair_violations(a, b, 1, 5)
        assert len(violations) == 1
        assert violations[0].region == Rect(0, 10, 100, 13)

    def test_no_projection_overlap_no_violation(self):
        # Diagonal neighbors: corner-to-corner proximity is out of scope.
        a = rect(0, 0, 10, 10)
        b = rect(12, 12, 20, 20)
        assert spacing_pair_violations(a, b, 1, 50) == []

    def test_abutting_treated_as_connected(self):
        a = rect(0, 0, 10, 10)
        b = rect(10, 0, 20, 10)
        assert spacing_pair_violations(a, b, 1, 50) == []

    def test_partial_projection_overlap_region_clipped(self):
        a = rect(0, 0, 10, 50)
        b = rect(14, 30, 24, 90)
        violations = spacing_pair_violations(a, b, 1, 6)
        assert violations[0].region == Rect(10, 30, 14, 50)


class TestNotch:
    def test_u_notch_flagged(self):
        u = Polygon(
            [(0, 0), (0, 50), (10, 50), (10, 20), (20, 20), (20, 50), (30, 50), (30, 0)]
        )
        violations = spacing_notch_violations(u, 1, 15)
        assert len(violations) == 1
        assert violations[0].measured == 10
        assert violations[0].region == Rect(10, 20, 20, 50)

    def test_wide_notch_passes(self):
        u = Polygon(
            [(0, 0), (0, 50), (10, 50), (10, 20), (40, 20), (40, 50), (50, 50), (50, 0)]
        )
        assert spacing_notch_violations(u, 1, 15) == []

    def test_rectangle_has_no_notch(self):
        assert spacing_notch_violations(rect(0, 0, 10, 10), 1, 100) == []


class TestFlatCheck:
    def test_only_near_pairs_flagged(self):
        polys = [rect(0, 0, 10, 10), rect(15, 0, 25, 10), rect(500, 0, 510, 10)]
        violations = check_spacing(polys, 1, 8)
        assert len(violations) == 1

    def test_includes_notches(self):
        u = Polygon(
            [(0, 0), (0, 50), (10, 50), (10, 20), (20, 20), (20, 50), (30, 50), (30, 0)]
        )
        violations = check_spacing([u], 1, 15)
        assert len(violations) == 1

    def test_candidate_filter_complete_at_rule_boundary(self):
        # Gap of exactly rule-1 must still be caught by the MBR filter.
        for rule in (2, 3, 7, 18):
            a = rect(0, 0, 10, 10)
            b = rect(10 + rule - 1, 0, 30 + rule, 10)
            violations = check_spacing([a, b], 1, rule)
            assert len(violations) == 1, rule
            assert violations[0].measured == rule - 1

    def test_three_wires_two_gaps(self):
        polys = [rect(0, 0, 10, 100), rect(14, 0, 24, 100), rect(28, 0, 38, 100)]
        violations = check_spacing(polys, 1, 6)
        assert len(violations) == 2
        # Non-adjacent pair (gap 18) not flagged at threshold 6.
        assert all(v.measured == 4 for v in violations)

    def test_empty_input(self):
        assert check_spacing([], 1, 10) == []
