from repro.geometry import Polygon, Rect, Transform
from repro.hierarchy import (
    HierarchyTree,
    QueryStats,
    count_layer_range,
    layer_range_query,
)
from repro.layout import CellReference, Layout, Repetition


def grid_layout(cols=8, rows=8) -> Layout:
    """leaf cells on a sparse grid, plus a decoy layer-2-only subtree."""
    layout = Layout("grid")
    leaf = layout.new_cell("leaf")
    leaf.add_polygon(1, Polygon.from_rect_coords(0, 0, 10, 10))
    decoy = layout.new_cell("decoy")
    decoy.add_polygon(2, Polygon.from_rect_coords(0, 0, 5, 5))
    top = layout.new_cell("top")
    top.add_reference(
        CellReference("leaf", Transform(), Repetition(cols, rows, (100, 0), (0, 100)))
    )
    top.add_reference(CellReference("decoy", Transform(dx=-500)))
    layout.set_top("top")
    return layout


class TestRangeQuery:
    def test_window_hits_expected_cells(self):
        tree = HierarchyTree(grid_layout())
        found = layer_range_query(tree, 1, Rect(0, 0, 110, 110))
        assert len(found) == 4  # grid points (0,0) (100,0) (0,100) (100,100)

    def test_results_in_top_coordinates(self):
        tree = HierarchyTree(grid_layout())
        found = layer_range_query(tree, 1, Rect(195, 295, 315, 305))
        mbrs = {p.mbr for p in found}
        assert Rect(200, 300, 210, 310) in mbrs

    def test_empty_window(self):
        from repro.geometry import EMPTY_RECT

        tree = HierarchyTree(grid_layout())
        assert layer_range_query(tree, 1, EMPTY_RECT) == []

    def test_absent_layer(self):
        tree = HierarchyTree(grid_layout())
        assert layer_range_query(tree, 99, Rect(0, 0, 10000, 10000)) == []

    def test_decoy_layer_pruned(self):
        tree = HierarchyTree(grid_layout())
        stats = QueryStats()
        count, stats = count_layer_range(tree, 1, Rect(0, 0, 10000, 10000))
        assert count == 64
        # The decoy subtree holds no layer-1 geometry: never visited.
        assert stats.cells_pruned >= 1

    def test_small_window_prunes_most_instances(self):
        tree = HierarchyTree(grid_layout())
        count, stats = count_layer_range(tree, 1, Rect(0, 0, 10, 10))
        assert count == 1
        # O(min(n, kh)): only a handful of the 64 instances visited.
        assert stats.cells_visited <= 4

    def test_disjoint_window(self):
        tree = HierarchyTree(grid_layout())
        count, stats = count_layer_range(tree, 1, Rect(5000, 5000, 6000, 6000))
        assert count == 0

    def test_rotated_instance_query(self):
        layout = Layout("rot")
        leaf = layout.new_cell("leaf")
        leaf.add_polygon(1, Polygon.from_rect_coords(0, 0, 20, 4))
        top = layout.new_cell("top")
        top.add_reference(CellReference("leaf", Transform(dx=100, dy=100, rotation=90)))
        layout.set_top("top")
        tree = HierarchyTree(layout)
        found = layer_range_query(tree, 1, Rect(90, 100, 100, 120))
        assert len(found) == 1
        assert found[0].mbr == Rect(96, 100, 100, 120)
