import pytest

from repro.geometry import EMPTY_RECT, Point, Rect, bounding_rect, union_all


class TestBasics:
    def test_dimensions(self):
        r = Rect(0, 0, 10, 4)
        assert (r.width, r.height, r.area) == (10, 4, 40)

    def test_degenerate_rect_is_not_empty(self):
        r = Rect(5, 0, 5, 10)  # vertical segment
        assert not r.is_empty
        assert r.width == 0 and r.height == 10 and r.area == 0

    def test_empty_rect(self):
        assert EMPTY_RECT.is_empty
        assert EMPTY_RECT.area == 0

    def test_center(self):
        assert Rect(0, 0, 10, 10).center == Point(5, 5)
        assert Rect(0, 0, 11, 11).center == Point(5, 5)  # rounds low


class TestPredicates:
    def test_contains_point_boundary(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains_point(Point(0, 0))
        assert r.contains_point(Point(10, 10))
        assert not r.contains_point(Point(11, 5))

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(2, 2, 8, 8))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(2, 2, 12, 8))

    def test_empty_contains_nothing(self):
        assert not EMPTY_RECT.contains_rect(Rect(0, 0, 1, 1))
        assert not Rect(0, 0, 5, 5).contains_rect(EMPTY_RECT)

    def test_overlaps_closed(self):
        # Touching edges count (the engine inflates by the rule distance).
        assert Rect(0, 0, 5, 5).overlaps(Rect(5, 0, 10, 5))
        assert Rect(0, 0, 5, 5).overlaps(Rect(5, 5, 10, 10))  # corner touch

    def test_overlaps_strictly_excludes_touching(self):
        assert not Rect(0, 0, 5, 5).overlaps_strictly(Rect(5, 0, 10, 5))
        assert Rect(0, 0, 5, 5).overlaps_strictly(Rect(4, 0, 10, 5))

    def test_disjoint(self):
        assert not Rect(0, 0, 5, 5).overlaps(Rect(6, 0, 10, 5))

    def test_empty_never_overlaps(self):
        assert not EMPTY_RECT.overlaps(Rect(0, 0, 5, 5))
        assert not Rect(0, 0, 5, 5).overlaps(EMPTY_RECT)


class TestConstructive:
    def test_union(self):
        assert Rect(0, 0, 2, 2).union(Rect(5, 5, 8, 9)) == Rect(0, 0, 8, 9)

    def test_union_empty_identity(self):
        r = Rect(1, 2, 3, 4)
        assert r.union(EMPTY_RECT) == r
        assert EMPTY_RECT.union(r) == r

    def test_intersection(self):
        assert Rect(0, 0, 10, 10).intersection(Rect(5, 5, 20, 20)) == Rect(5, 5, 10, 10)

    def test_intersection_disjoint_is_empty(self):
        assert Rect(0, 0, 2, 2).intersection(Rect(5, 5, 8, 8)).is_empty

    def test_intersection_touching_is_degenerate(self):
        r = Rect(0, 0, 5, 5).intersection(Rect(5, 0, 10, 5))
        assert not r.is_empty and r.width == 0

    def test_inflated(self):
        assert Rect(5, 5, 10, 10).inflated(2) == Rect(3, 3, 12, 12)

    def test_deflate_to_empty(self):
        assert Rect(0, 0, 2, 2).inflated(-3).is_empty

    def test_inflate_empty_stays_empty(self):
        assert EMPTY_RECT.inflated(100).is_empty

    def test_translated(self):
        assert Rect(0, 0, 2, 2).translated(5, -1) == Rect(5, -1, 7, 1)


class TestGap:
    def test_gap_disjoint(self):
        assert Rect(0, 0, 2, 2).gap_to(Rect(7, 0, 9, 2)) == 5

    def test_gap_touching_is_zero(self):
        assert Rect(0, 0, 2, 2).gap_to(Rect(2, 0, 4, 2)) == 0

    def test_gap_overlapping_is_zero(self):
        assert Rect(0, 0, 5, 5).gap_to(Rect(3, 3, 8, 8)) == 0

    def test_gap_diagonal_is_chebyshev(self):
        assert Rect(0, 0, 2, 2).gap_to(Rect(5, 6, 7, 8)) == 4

    def test_gap_of_empty_raises(self):
        with pytest.raises(ValueError):
            EMPTY_RECT.gap_to(Rect(0, 0, 1, 1))


class TestHelpers:
    def test_bounding_rect(self):
        pts = [Point(3, 1), Point(-2, 7), Point(0, 0)]
        assert bounding_rect(pts) == Rect(-2, 0, 3, 7)

    def test_bounding_rect_empty(self):
        assert bounding_rect([]).is_empty

    def test_union_all(self):
        rects = [Rect(0, 0, 1, 1), Rect(5, 5, 6, 6), EMPTY_RECT]
        assert union_all(rects) == Rect(0, 0, 6, 6)

    def test_union_all_empty(self):
        assert union_all([]).is_empty
