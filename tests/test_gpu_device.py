import numpy as np
import pytest

from repro.errors import DeviceError
from repro.gpu import Device, OpKind, SequencedPolicy, StreamExecutor, is_device_policy, seq


class TestStreamsAndRecording:
    def test_memcpy_round_trip(self):
        device = Device()
        stream = device.create_stream()
        data = np.arange(10)
        on_device = stream.memcpy_h2d(data)
        back = stream.memcpy_d2h(on_device)
        assert np.array_equal(back, data)
        assert on_device is not data  # a real copy, as a PCIe transfer would be

    def test_ops_recorded_in_order(self):
        device = Device()
        stream = device.create_stream()
        stream.memcpy_h2d(np.arange(4))
        stream.launch("k", lambda: 42)
        device.record_host("prep", 0.001)
        kinds = [op.kind for op in device.ops]
        assert kinds == [OpKind.H2D, OpKind.KERNEL, OpKind.HOST]
        assert [op.seq for op in device.ops] == [0, 1, 2]

    def test_launch_returns_kernel_result(self):
        device = Device()
        stream = device.create_stream()
        assert stream.launch("add", lambda a, b: a + b, 2, 3) == 5

    def test_bytes_accounted(self):
        device = Device()
        stream = device.create_stream()
        stream.memcpy_h2d(np.zeros(100, dtype=np.int64))
        assert device.ops[0].bytes == 800

    def test_unknown_stream_lookup(self):
        with pytest.raises(DeviceError):
            Device().stream(3)

    def test_reset(self):
        device = Device()
        stream = device.create_stream()
        stream.launch("k", lambda: None)
        device.reset()
        assert device.ops == []


class TestAsyncTimeline:
    def test_device_ops_overlap_host(self):
        device = Device()
        stream = device.create_stream()
        # Hand-craft a record: host 10ms, then an async kernel of 8ms issued
        # before more host work of 8ms -> async makespan ~18ms, serial 26ms.
        device.record_host("a", 0.010)
        device._record(OpKind.KERNEL, "k", stream.stream_id, 0.008)
        device.record_host("b", 0.008)
        summary = device.timeline().summarize()
        assert summary.serial_seconds == pytest.approx(0.026)
        assert summary.async_seconds == pytest.approx(0.018)
        assert 0 < summary.overlap_savings < 1

    def test_same_stream_serializes(self):
        device = Device()
        stream = device.create_stream()
        device._record(OpKind.KERNEL, "k1", stream.stream_id, 0.010)
        device._record(OpKind.KERNEL, "k2", stream.stream_id, 0.010)
        summary = device.timeline().summarize()
        assert summary.async_seconds == pytest.approx(0.020)

    def test_two_streams_overlap(self):
        device = Device()
        s0 = device.create_stream()
        s1 = device.create_stream()
        device._record(OpKind.KERNEL, "k1", s0.stream_id, 0.010)
        device._record(OpKind.KERNEL, "k2", s1.stream_id, 0.010)
        summary = device.timeline().summarize()
        assert summary.async_seconds == pytest.approx(0.010)
        assert device.timeline().per_stream_seconds() == {
            0: pytest.approx(0.010),
            1: pytest.approx(0.010),
        }

    def test_empty_timeline(self):
        summary = Device().timeline().summarize()
        assert summary.serial_seconds == 0.0 and summary.overlap_savings == 0.0


class TestPolicies:
    def test_traits(self):
        assert not is_device_policy(seq)
        assert not is_device_policy(SequencedPolicy())
        device = Device()
        assert is_device_policy(StreamExecutor(device.create_stream()))

    def test_stream_executor_exposes_device(self):
        device = Device()
        executor = StreamExecutor(device.create_stream())
        assert executor.device is device
