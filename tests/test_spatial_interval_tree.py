import random

import pytest

from repro.spatial import IntervalTree


def brute(intervals, qlo, qhi):
    return sorted(item for lo, hi, item in intervals if lo <= qhi and qlo <= hi)


class TestBasics:
    def test_insert_query(self):
        tree = IntervalTree([0, 5, 10])
        tree.insert(0, 4, "a")
        tree.insert(5, 9, "b")
        assert sorted(tree.query(3, 6)) == ["a", "b"]
        assert tree.query(10, 20) == []

    def test_closed_overlap_semantics(self):
        tree = IntervalTree([0])
        tree.insert(0, 5, "a")
        assert tree.query(5, 9) == ["a"]  # touching counts
        assert tree.query(6, 9) == []

    def test_stab(self):
        tree = IntervalTree([0, 10])
        tree.insert(0, 10, "a")
        tree.insert(10, 20, "b")
        assert sorted(tree.stab(10)) == ["a", "b"]

    def test_remove(self):
        tree = IntervalTree([0, 5])
        tree.insert(0, 9, "a")
        tree.insert(5, 9, "b")
        tree.remove(0, 9, "a")
        assert tree.query(0, 100) == ["b"]
        assert len(tree) == 1

    def test_remove_missing_raises(self):
        tree = IntervalTree([0])
        with pytest.raises(KeyError):
            tree.remove(0, 5, "ghost")

    def test_duplicate_intervals_distinct_items(self):
        tree = IntervalTree([0])
        tree.insert(0, 5, "a")
        tree.insert(0, 5, "b")
        assert sorted(tree.query(2, 3)) == ["a", "b"]
        tree.remove(0, 5, "a")
        assert tree.query(2, 3) == ["b"]

    def test_inverted_interval_rejected(self):
        tree = IntervalTree([0])
        with pytest.raises(ValueError):
            tree.insert(5, 0, "x")

    def test_inverted_query_rejected(self):
        tree = IntervalTree([0])
        with pytest.raises(ValueError):
            tree.query(5, 0)

    def test_interval_outside_skeleton_rejected(self):
        tree = IntervalTree([100])
        with pytest.raises(ValueError):
            tree.insert(0, 5, "x")

    def test_items_lists_all(self):
        tree = IntervalTree([0, 7])
        tree.insert(0, 3, "a")
        tree.insert(7, 9, "b")
        assert sorted(item for _, _, item in tree.items()) == ["a", "b"]


class TestRandomizedAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_workload(self, seed):
        rng = random.Random(seed)
        keys = [rng.randint(0, 200) for _ in range(100)]
        tree = IntervalTree(keys)
        live = []
        for step in range(300):
            action = rng.random()
            if action < 0.5 or not live:
                lo = rng.choice(keys)
                hi = lo + rng.randint(0, 40)
                item = step
                tree.insert(lo, hi, item)
                live.append((lo, hi, item))
            elif action < 0.7:
                lo, hi, item = live.pop(rng.randrange(len(live)))
                tree.remove(lo, hi, item)
            else:
                qlo = rng.randint(0, 220)
                qhi = qlo + rng.randint(0, 60)
                assert sorted(tree.query(qlo, qhi)) == brute(live, qlo, qhi)
        assert len(tree) == len(live)
