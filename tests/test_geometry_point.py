import pytest

from repro.geometry import ORIGIN, Point, iter_points


class TestPoint:
    def test_unpacking(self):
        x, y = Point(3, 4)
        assert (x, y) == (3, 4)

    def test_lexicographic_order(self):
        assert Point(1, 5) < Point(2, 0)
        assert Point(1, 2) < Point(1, 3)

    def test_translated(self):
        assert Point(1, 2).translated(10, -5) == Point(11, -3)

    def test_translation_does_not_mutate(self):
        p = Point(1, 2)
        p.translated(5, 5)
        assert p == Point(1, 2)

    def test_manhattan_distance(self):
        assert Point(0, 0).manhattan_distance(Point(3, -4)) == 7

    def test_chebyshev_distance(self):
        assert Point(0, 0).chebyshev_distance(Point(3, -4)) == 4

    def test_euclidean_distance_squared(self):
        assert Point(1, 1).euclidean_distance_squared(Point(4, 5)) == 25

    def test_origin(self):
        assert ORIGIN == Point(0, 0)

    def test_hashable(self):
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2


class TestIterPoints:
    def test_pairs_flat_coordinates(self):
        assert list(iter_points(iter([1, 2, 3, 4]))) == [Point(1, 2), Point(3, 4)]

    def test_empty(self):
        assert list(iter_points(iter([]))) == []

    def test_odd_count_raises(self):
        with pytest.raises(ValueError):
            list(iter_points(iter([1, 2, 3])))
