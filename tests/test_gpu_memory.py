import numpy as np
import pytest

from repro.errors import DeviceError
from repro.gpu import StreamOrderedAllocator


class TestAllocator:
    def test_alloc_free_reuse(self):
        allocator = StreamOrderedAllocator()
        a = allocator.malloc(1000, stream_id=0)
        allocator.free(a, stream_id=0)
        b = allocator.malloc(900, stream_id=0)
        assert b is a  # pooled buffer reused
        assert allocator.stats.pool_hits == 1

    def test_size_classes_power_of_two(self):
        allocator = StreamOrderedAllocator()
        buf = allocator.malloc(1000)
        assert buf.size_class == 1024
        small = allocator.malloc(10)
        assert small.size_class == 256  # minimum class

    def test_different_streams_do_not_share_pools(self):
        allocator = StreamOrderedAllocator()
        a = allocator.malloc(512, stream_id=0)
        allocator.free(a, stream_id=0)
        b = allocator.malloc(512, stream_id=1)
        assert b is not a

    def test_double_free_rejected(self):
        allocator = StreamOrderedAllocator()
        buf = allocator.malloc(100)
        allocator.free(buf)
        with pytest.raises(DeviceError):
            allocator.free(buf)

    def test_use_after_free_rejected(self):
        allocator = StreamOrderedAllocator()
        buf = allocator.malloc(100)
        allocator.free(buf)
        with pytest.raises(DeviceError):
            buf.view(np.uint8)

    def test_view_dtype(self):
        allocator = StreamOrderedAllocator()
        buf = allocator.malloc(64)
        view = buf.view(np.int64)
        assert view.dtype == np.int64 and len(view) == 8

    def test_peak_tracking(self):
        allocator = StreamOrderedAllocator()
        a = allocator.malloc(256)
        b = allocator.malloc(256)
        allocator.free(a)
        allocator.free(b)
        allocator.malloc(256)
        assert allocator.stats.peak_bytes == 512
        assert allocator.stats.live_bytes == 256

    def test_hit_ratio(self):
        allocator = StreamOrderedAllocator()
        a = allocator.malloc(100)
        allocator.free(a)
        allocator.malloc(100)
        assert allocator.stats.hit_ratio == pytest.approx(0.5)

    def test_trim_releases_pooled(self):
        allocator = StreamOrderedAllocator()
        a = allocator.malloc(1000)
        allocator.free(a)
        released = allocator.trim()
        assert released == 1024
        fresh = allocator.malloc(1000)
        assert fresh is not a

    def test_non_positive_size_rejected(self):
        with pytest.raises(DeviceError):
            StreamOrderedAllocator().malloc(0)
