"""Warm-start equivalence: a store-served run must be invisible in the report.

Cold run, warm run, `--no-cache` run, and every backend must produce the
byte-identical CSV; only the stats may differ (and must: the warm run shows
cache hits and exactly zero pack seconds).
"""

import os

import pytest

from repro.core import Engine, EngineOptions, PackStore, check_window
from repro.core.rules import layer
from repro.geometry import Rect
from repro.workloads import (
    InjectionPlan,
    asap7,
    build_design,
    inject_violations,
)


def deck():
    """Spacing + corner + enclosure: every store-backed pack kind."""
    rules = asap7.spacing_deck() + asap7.enclosure_deck()
    rules.append(layer(asap7.M2).corner_spacing().greater_than(10).named("CS.M2"))
    return rules


@pytest.fixture(scope="module")
def dirty_layout():
    layout = build_design("uart", "ci")
    inject_violations(layout, InjectionPlan(spacing=3), layer=asap7.M2, seed=7)
    return layout


def run(layout, *, mode, cache_dir=None, use_cache=True, jobs=1):
    engine = Engine(
        options=EngineOptions(
            mode=mode, cache_dir=cache_dir, use_cache=use_cache, jobs=jobs
        )
    )
    return engine.check(layout, rules=deck())


class TestWarmEqualsCold:
    def test_parallel_warm_equals_cold_with_hit_stats(self, dirty_layout, tmp_path):
        cache = str(tmp_path)
        cold = run(dirty_layout, mode="parallel", cache_dir=cache)
        cold_stats = cold.results[-1].stats
        assert cold_stats["cache_misses"] > 0
        assert cold_stats["cache_hits"] == 0
        assert cold_stats["cache_bytes_written"] > 0

        warm = run(dirty_layout, mode="parallel", cache_dir=cache)
        warm_stats = warm.results[-1].stats
        assert warm.to_csv() == cold.to_csv()
        assert warm_stats["cache_hits"] > 0
        assert warm_stats["cache_misses"] == 0
        assert warm_stats["pack_seconds"] == 0.0
        assert warm_stats["cache_bytes_read"] > 0

    def test_no_cache_restores_the_cold_path(self, dirty_layout, tmp_path):
        cache = str(tmp_path)
        run(dirty_layout, mode="parallel", cache_dir=cache)  # populate
        off = run(dirty_layout, mode="parallel", cache_dir=cache, use_cache=False)
        stats = off.results[-1].stats
        assert stats["cache_hits"] == 0 and stats["cache_misses"] == 0
        baseline = run(dirty_layout, mode="parallel")
        assert off.to_csv() == baseline.to_csv()

    def test_all_backends_agree_warm_and_cold(self, dirty_layout, tmp_path):
        cache = str(tmp_path)
        baseline = run(dirty_layout, mode="sequential").to_csv()
        for mode in ("sequential", "parallel", "multiproc"):
            cold = run(dirty_layout, mode=mode, cache_dir=cache, jobs=2)
            warm = run(dirty_layout, mode=mode, cache_dir=cache, jobs=2)
            assert cold.to_csv() == baseline, mode
            assert warm.to_csv() == baseline, mode

    def test_multiproc_warm_ships_memmap_payloads(self, dirty_layout, tmp_path):
        cache = str(tmp_path)
        cold = run(dirty_layout, mode="multiproc", cache_dir=cache, jobs=2)
        warm = run(dirty_layout, mode="multiproc", cache_dir=cache, jobs=2)
        assert warm.to_csv() == cold.to_csv()
        warm_stats = warm.results[-1].stats
        assert warm_stats["mp_mmap_bytes"] > 0
        assert warm_stats["pack_seconds"] == 0.0

    def test_sequential_reuses_the_partition(self, dirty_layout, tmp_path):
        cache = str(tmp_path)
        run(dirty_layout, mode="sequential", cache_dir=cache)
        warm = run(dirty_layout, mode="sequential", cache_dir=cache)
        stats = warm.results[-1].stats
        assert stats["cache_hits"] > 0 and stats["cache_misses"] == 0

    def test_windowed_backend_with_cache(self, dirty_layout, tmp_path):
        cache = str(tmp_path)
        window = Rect(0, 0, 4000, 4000)
        cold = check_window(
            dirty_layout, window, rules=deck(),
            options=EngineOptions(cache_dir=cache),
        )
        warm = check_window(
            dirty_layout, window, rules=deck(),
            options=EngineOptions(cache_dir=cache),
        )
        assert warm.to_csv() == cold.to_csv()

    def test_geometry_edit_invalidates_between_runs(self, tmp_path):
        cache = str(tmp_path)
        layout = build_design("uart", "ci")
        run(layout, mode="parallel", cache_dir=cache)
        edited = build_design("uart", "ci")
        inject_violations(edited, InjectionPlan(spacing=2), layer=asap7.M2, seed=3)
        cold_truth = run(edited, mode="parallel").to_csv()
        cached = run(edited, mode="parallel", cache_dir=cache)
        # Entries for the edited layer miss; the report is still exact.
        assert cached.to_csv() == cold_truth
        assert cached.results[-1].stats["cache_misses"] > 0


class TestPersistedCounters:
    def test_counters_accumulate_across_engine_runs(self, dirty_layout, tmp_path):
        cache = str(tmp_path)
        run(dirty_layout, mode="parallel", cache_dir=cache)
        run(dirty_layout, mode="parallel", cache_dir=cache)
        totals = PackStore(cache).persisted_counters()
        assert totals.get("misses", 0) > 0  # cold run
        assert totals.get("hits", 0) > 0  # warm run
        assert totals.get("bytes_written", 0) > 0


class TestCacheCli:
    @pytest.fixture()
    def uart_gds(self, tmp_path):
        from repro.gdsii import write
        from repro.layout import gdsii_from_layout

        path = tmp_path / "uart.gds"
        write(gdsii_from_layout(build_design("uart")), path)
        return str(path)

    def test_check_twice_then_stats_then_clear(self, uart_gds, tmp_path, capsys):
        from repro.cli import main

        cache = str(tmp_path / "cache")
        for _ in range(2):
            main(["check", uart_gds, "--top", "top", "--mode", "parallel",
                  "--cache-dir", cache, "--csv"])
        first, second = capsys.readouterr().out.split("rule,", 2)[1:]
        assert first == second  # byte-identical CSV cold vs warm

        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "entries:" in out and "hits:" in out
        assert "entries: 0" not in out

        assert main(["cache", "clear", "--cache-dir", cache]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_stats_counts_report_cache(self, uart_gds, tmp_path, capsys):
        from repro.cli import main

        cache = str(tmp_path / "rcache")
        main(["check", uart_gds, "--top", "top", "--cache-dir", cache, "--csv"])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "report entries: 1" in out
        assert "report bytes:" in out
        assert "report bytes: 0" not in out

    def test_clear_states_what_it_clears(self, uart_gds, tmp_path, capsys):
        from repro.cli import main

        cache = str(tmp_path / "ccache")
        main(["check", uart_gds, "--top", "top", "--cache-dir", cache, "--csv"])
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "pack artifacts" in out and "cached report" in out
        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "entries: 0" in out and "report entries: 0" in out

    def test_cache_dir_env_var(self, uart_gds, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        cache = str(tmp_path / "envcache")
        monkeypatch.setenv("REPRO_CACHE_DIR", cache)
        main(["check", uart_gds, "--top", "top", "--mode", "parallel"])
        assert os.path.isdir(cache)
        assert main(["cache", "stats"]) == 0
        assert "entries:" in capsys.readouterr().out

    def test_no_cache_flag_skips_the_store(self, uart_gds, tmp_path, monkeypatch):
        from repro.cli import main

        cache = str(tmp_path / "nocache")
        monkeypatch.setenv("REPRO_CACHE_DIR", cache)
        main(["check", uart_gds, "--top", "top", "--mode", "parallel", "--no-cache"])
        assert not os.path.isdir(cache)

    def test_cache_without_dir_errors(self, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit):
            main(["cache", "stats"])

    def test_check_window_accepts_cache_args(self, uart_gds, tmp_path, capsys):
        from repro.cli import main

        cache = str(tmp_path / "wcache")
        code = main(["check-window", uart_gds, "0", "0", "2000", "2000",
                     "--top", "top", "--cache-dir", cache, "--csv"])
        assert code in (0, 1)
        # Windowed gathering checks flat polygons and never packs, so the
        # store stays empty — the flags must still be accepted and harmless.
        out = capsys.readouterr().out
        assert "rule," in out
