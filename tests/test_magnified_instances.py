"""Regression tests: magnified placements through every engine path.

A magnification breaks distance invariance (memo refresh paths) and makes
inverse window mapping fractional (outward-rounded pull-back); these tests
pin both behaviours, including the odd-offset case that once crashed the
sequential gather.
"""

import pytest

from repro.core import Engine
from repro.core.rules import layer
from repro.geometry import Polygon, Rect, Transform
from repro.hierarchy.query import pull_back_window
from repro.layout import CellReference, Layout


def build(mag_dx: int = 1) -> Layout:
    layout = Layout("mag")
    leaf = layout.new_cell("leaf")
    leaf.add_polygon(1, Polygon.from_rect_coords(0, 0, 10, 100))
    top = layout.new_cell("top")
    top.add_reference(CellReference("leaf", Transform(dx=mag_dx, magnification=3)))
    top.add_polygon(1, Polygon.from_rect_coords(36, 0, 46, 300))
    layout.set_top("top")
    return layout


class TestPullBackWindow:
    def test_identity(self):
        window = Rect(3, 5, 9, 11)
        assert pull_back_window(Transform(), window) == window

    def test_translation(self):
        assert pull_back_window(Transform(dx=10, dy=-5), Rect(10, -5, 20, 5)) == Rect(
            0, 0, 10, 10
        )

    def test_magnification_rounds_outward(self):
        # Window [1, 10] at mag 3: exact inverse is [1/3, 10/3].
        result = pull_back_window(Transform(magnification=3), Rect(1, 1, 10, 10))
        assert result == Rect(0, 0, 4, 4)

    def test_rotation(self):
        result = pull_back_window(Transform(rotation=90), Rect(-10, 0, 0, 10))
        assert result == Rect(0, 0, 10, 10)

    @pytest.mark.parametrize("rotation", [0, 90, 180, 270])
    @pytest.mark.parametrize("mirror", [False, True])
    def test_contains_exact_inverse_for_rigid(self, rotation, mirror):
        t = Transform(dx=7, dy=-3, rotation=rotation, mirror_x=mirror)
        window = Rect(-20, -10, 30, 40)
        from repro.hierarchy import invert

        exact = invert(t).apply_rect(window)
        assert pull_back_window(t, window) == exact


class TestMagnifiedEngine:
    @pytest.mark.parametrize("mag_dx", [0, 1, 2])
    def test_spacing_across_magnified_boundary(self, mag_dx):
        layout = build(mag_dx)
        rule = layer(1).spacing().greater_than(8)
        rs = Engine(mode="sequential").check(layout, rules=[rule])
        rp = Engine(mode="parallel").check(layout, rules=[rule])
        assert rs.results[0].violation_set() == rp.results[0].violation_set()
        # Magnified wire spans x in [dx, dx+30]; the gap to the wire at 36
        # is 6 or 5 or 4 < 8: always exactly one violation.
        assert rs.results[0].num_violations == 1

    def test_magnified_width_semantics(self):
        layout = build()
        # The magnified wire is 30 wide: passes a 20 rule that the
        # definition (10 wide) would fail.
        rule = layer(1).width().greater_than(20)
        report = Engine(mode="sequential").check(layout, rules=[rule])
        regions = {v.region for v in report.results[0].violations}
        assert Rect(36, 0, 46, 300) in regions  # the plain top wire
        assert len(regions) == 1  # magnified instance passes
