"""Metamorphic properties of the check procedures.

Violations must transform with the geometry: translating or rigidly
transforming a layout moves every marker identically and never changes
counts or measured values; scaling by k scales distances by k. These
properties hold for any input, so hypothesis drives them.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.checks import (
    check_area,
    check_spacing,
    check_width,
)
from repro.checks.corner import check_corner_spacing
from repro.geometry import Polygon, Transform

coords = st.integers(min_value=-400, max_value=400)
sizes = st.integers(min_value=2, max_value=60)


@st.composite
def rect_polys(draw, max_count=12):
    out = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_count))):
        x = draw(coords)
        y = draw(coords)
        out.append(
            Polygon.from_rect_coords(x, y, x + draw(sizes), y + draw(sizes))
        )
    return out


@st.composite
def rigid_transforms(draw):
    return Transform(
        dx=draw(coords),
        dy=draw(coords),
        rotation=draw(st.sampled_from([0, 90, 180, 270])),
        mirror_x=draw(st.booleans()),
    )


SETTINGS = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestTransformEquivariance:
    @SETTINGS
    @given(rect_polys(), rigid_transforms(), st.integers(min_value=1, max_value=25))
    def test_spacing_markers_transform_with_geometry(self, polys, t, value):
        base = check_spacing(polys, 1, value)
        moved = check_spacing([p.transformed(t) for p in polys], 1, value)
        expected = {(t.apply_rect(v.region), v.measured) for v in base}
        got = {(v.region, v.measured) for v in moved}
        assert got == expected

    @SETTINGS
    @given(rect_polys(), rigid_transforms(), st.integers(min_value=1, max_value=25))
    def test_width_markers_transform_with_geometry(self, polys, t, value):
        base = check_width(polys, 1, value)
        moved = check_width([p.transformed(t) for p in polys], 1, value)
        expected = {(t.apply_rect(v.region), v.measured) for v in base}
        got = {(v.region, v.measured) for v in moved}
        assert got == expected

    @SETTINGS
    @given(rect_polys(max_count=8), rigid_transforms(), st.integers(min_value=2, max_value=20))
    def test_corner_count_invariant_under_rigid_transforms(self, polys, t, value):
        base = check_corner_spacing(polys, 1, value)
        moved = check_corner_spacing([p.transformed(t) for p in polys], 1, value)
        assert sorted(v.measured for v in base) == sorted(v.measured for v in moved)

    @SETTINGS
    @given(rect_polys(), st.integers(min_value=1, max_value=1000))
    def test_area_measured_matches_shoelace(self, polys, value):
        for violation in check_area(polys, 1, value):
            assert violation.measured < value


class TestScaling:
    @SETTINGS
    @given(rect_polys(max_count=8), st.integers(min_value=1, max_value=20),
           st.sampled_from([2, 3]))
    def test_magnification_scales_spacing_measurements(self, polys, value, k):
        base = check_spacing(polys, 1, value)
        scaled = check_spacing(
            [p.transformed(Transform(magnification=k)) for p in polys], 1, k * value
        )
        assert sorted(v.measured * k for v in base) == sorted(
            v.measured for v in scaled
        )


class TestMonotonicity:
    @SETTINGS
    @given(rect_polys(), st.integers(min_value=1, max_value=20))
    def test_larger_rule_finds_superset(self, polys, value):
        small = {(v.region, v.measured) for v in check_spacing(polys, 1, value)}
        large = {(v.region, v.measured) for v in check_spacing(polys, 1, value + 5)}
        assert small <= large

    @SETTINGS
    @given(rect_polys(), st.integers(min_value=1, max_value=20))
    def test_measured_always_below_rule(self, polys, value):
        for v in check_spacing(polys, 1, value):
            assert 0 < v.measured < value
