"""Every example script must run cleanly end to end (subprocess smoke)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must produce output"


def test_all_examples_discovered():
    assert len(EXAMPLES) >= 6
