import pytest

from repro.core import Engine
from repro.core.incremental import check_window
from repro.geometry import EMPTY_RECT, Rect
from repro.workloads import InjectionPlan, asap7, build_design, inject_violations


@pytest.fixture()
def dirty_design():
    layout = build_design("ibex")
    expected = inject_violations(
        layout,
        InjectionPlan(spacing=4, width=3, enclosure=2),
        layer=asap7.M2,
        via_layer=asap7.V2,
        metal_layer=asap7.M2,
        seed=13,
    )
    return layout, expected


RULES = [
    asap7.spacing_rule(asap7.M2),
    asap7.width_rule(asap7.M2),
    asap7.enclosure_rule(asap7.V2, asap7.M2),
]


class TestWindowedChecking:
    def test_matches_full_check_filtered(self, dirty_design):
        layout, _ = dirty_design
        window = Rect(0, 1500, 2000, 3500)  # covers part of the scratch strip
        full = Engine(mode="sequential").check(layout, rules=RULES)
        windowed = check_window(layout, window, rules=RULES)
        for full_result, win_result in zip(full.results, windowed.results):
            expected = frozenset(
                v for v in full_result.violations if v.region.overlaps(window)
            )
            assert win_result.violation_set() == expected, full_result.rule.name

    def test_window_far_from_violations_is_clean(self, dirty_design):
        layout, _ = dirty_design
        window = Rect(0, 0, 500, 500)  # inside the clean core
        report = check_window(layout, window, rules=RULES)
        assert report.passed

    def test_window_over_everything_equals_full(self, dirty_design):
        layout, expected = dirty_design
        window = Rect(-10_000, -10_000, 100_000, 100_000)
        report = check_window(layout, window, rules=RULES)
        full = Engine(mode="sequential").check(layout, rules=RULES)
        assert report.total_violations == full.total_violations

    def test_empty_window_rejected(self, dirty_design):
        layout, _ = dirty_design
        with pytest.raises(ValueError):
            check_window(layout, EMPTY_RECT, rules=RULES)

    def test_violation_pair_straddling_window_edge(self):
        """A violating pair with only one polygon inside the window."""
        from repro.geometry import Polygon
        from repro.layout import Layout
        from repro.core.rules import layer

        layout = Layout("straddle")
        top = layout.new_cell("top")
        top.add_polygon(1, Polygon.from_rect_coords(0, 0, 100, 10))
        top.add_polygon(1, Polygon.from_rect_coords(0, 14, 100, 24))
        layout.set_top("top")
        # Window touches only the lower wire; the violation strip overlaps it.
        window = Rect(0, 0, 100, 11)
        report = check_window(
            layout, window, rules=[layer(1).spacing().greater_than(8)]
        )
        assert report.total_violations == 1

    def test_report_mode_label(self, dirty_design):
        layout, _ = dirty_design
        report = check_window(layout, Rect(0, 0, 10, 10), rules=RULES)
        assert report.mode == "windowed"
