import pytest

from repro.core import Engine
from repro.core.incremental import check_window
from repro.geometry import EMPTY_RECT, Rect
from repro.workloads import InjectionPlan, asap7, build_design, inject_violations


@pytest.fixture()
def dirty_design():
    layout = build_design("ibex")
    expected = inject_violations(
        layout,
        InjectionPlan(spacing=4, width=3, enclosure=2),
        layer=asap7.M2,
        via_layer=asap7.V2,
        metal_layer=asap7.M2,
        seed=13,
    )
    return layout, expected


RULES = [
    asap7.spacing_rule(asap7.M2),
    asap7.width_rule(asap7.M2),
    asap7.enclosure_rule(asap7.V2, asap7.M2),
]


class TestWindowedChecking:
    def test_matches_full_check_filtered(self, dirty_design):
        layout, _ = dirty_design
        window = Rect(0, 1500, 2000, 3500)  # covers part of the scratch strip
        full = Engine(mode="sequential").check(layout, rules=RULES)
        windowed = check_window(layout, window, rules=RULES)
        for full_result, win_result in zip(full.results, windowed.results):
            expected = frozenset(
                v for v in full_result.violations if v.region.overlaps(window)
            )
            assert win_result.violation_set() == expected, full_result.rule.name

    def test_window_far_from_violations_is_clean(self, dirty_design):
        layout, _ = dirty_design
        window = Rect(0, 0, 500, 500)  # inside the clean core
        report = check_window(layout, window, rules=RULES)
        assert report.passed

    def test_window_over_everything_equals_full(self, dirty_design):
        layout, expected = dirty_design
        window = Rect(-10_000, -10_000, 100_000, 100_000)
        report = check_window(layout, window, rules=RULES)
        full = Engine(mode="sequential").check(layout, rules=RULES)
        assert report.total_violations == full.total_violations

    def test_empty_window_rejected(self, dirty_design):
        layout, _ = dirty_design
        with pytest.raises(ValueError):
            check_window(layout, EMPTY_RECT, rules=RULES)

    def test_violation_pair_straddling_window_edge(self):
        """A violating pair with only one polygon inside the window."""
        from repro.geometry import Polygon
        from repro.layout import Layout
        from repro.core.rules import layer

        layout = Layout("straddle")
        top = layout.new_cell("top")
        top.add_polygon(1, Polygon.from_rect_coords(0, 0, 100, 10))
        top.add_polygon(1, Polygon.from_rect_coords(0, 14, 100, 24))
        layout.set_top("top")
        # Window touches only the lower wire; the violation strip overlaps it.
        window = Rect(0, 0, 100, 11)
        report = check_window(
            layout, window, rules=[layer(1).spacing().greater_than(8)]
        )
        assert report.total_violations == 1

    def test_report_mode_label(self, dirty_design):
        layout, _ = dirty_design
        report = check_window(layout, Rect(0, 0, 10, 10), rules=RULES)
        assert report.mode == "windowed"


WINDOW_SETS = {
    "disjoint": [Rect(0, 1500, 2000, 2200), Rect(0, 2800, 2000, 3500)],
    "overlapping": [Rect(0, 1500, 2000, 2600), Rect(0, 2400, 2000, 3500)],
    "nested": [Rect(0, 1500, 2000, 3500), Rect(500, 2000, 1500, 2500)],
    "abutting": [Rect(0, 1500, 2000, 2500), Rect(0, 2500, 2000, 3500)],
}


class TestMultiWindowChecking:
    @pytest.mark.parametrize("name", sorted(WINDOW_SETS), ids=sorted(WINDOW_SETS))
    def test_matches_full_check_filtered_to_region_set(self, dirty_design, name):
        from repro.spatial.regions import RegionSet

        layout, _ = dirty_design
        windows = WINDOW_SETS[name]
        regions = RegionSet.of(windows)
        full = Engine(mode="sequential").check(layout, rules=RULES)
        windowed = check_window(layout, windows, rules=RULES)
        for full_result, win_result in zip(full.results, windowed.results):
            expected = frozenset(
                v for v in full_result.violations if regions.overlaps(v.region)
            )
            assert win_result.violation_set() == expected, full_result.rule.name

    def test_multi_window_equals_union_of_windows(self, dirty_design):
        """Coalescing is exact: the set behaves as the union of its inputs."""
        layout, _ = dirty_design
        windows = WINDOW_SETS["overlapping"]
        merged = check_window(layout, windows, rules=RULES)
        singles = [check_window(layout, [w], rules=RULES) for w in windows]
        for index, result in enumerate(merged.results):
            union = frozenset().union(
                *(report.results[index].violation_set() for report in singles)
            )
            assert result.violation_set() == union, result.rule.name

    def test_no_duplicates_across_straddled_windows(self):
        """A polygon under several windows gathers once (no self-spacing)."""
        from repro.layout import Layout
        from repro.geometry import Polygon
        from repro.core.rules import layer as L

        layout = Layout("straddle2")
        top = layout.new_cell("top")
        top.add_polygon(1, Polygon.from_rect_coords(0, 0, 300, 10))
        layout.set_top("top")
        windows = [Rect(0, 0, 100, 10), Rect(200, 0, 300, 10)]
        report = check_window(
            layout, windows, rules=[L(1).spacing().greater_than(8)]
        )
        assert report.passed

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_byte_identical_across_backends_and_jobs(self, dirty_design, jobs):
        from repro.core import EngineOptions

        layout, _ = dirty_design
        windows = WINDOW_SETS["overlapping"]
        baseline = check_window(layout, windows, rules=RULES)
        options = EngineOptions(
            mode="multiproc" if jobs > 1 else "sequential", jobs=jobs
        )
        report = check_window(layout, windows, rules=RULES, options=options)
        assert report.to_csv() == baseline.to_csv()
        assert report.to_json() != ""  # schema renders for windowed runs too

    def test_all_empty_windows_rejected(self, dirty_design):
        layout, _ = dirty_design
        with pytest.raises(ValueError):
            check_window(layout, [EMPTY_RECT, EMPTY_RECT], rules=RULES)


class TestPerRuleStatsDeltas:
    def test_multiproc_stats_are_deltas_not_snapshots(self, dirty_design):
        """Regression: every per-rule result used to carry the cumulative
        backend counters (so rule N's stats included rules 1..N-1's work and
        the shared prefetch/compile counters). Deltas attribute work to the
        rule that did it; gauges (mp_jobs) keep their absolute value."""
        from repro.core import EngineOptions

        layout, _ = dirty_design
        report = check_window(
            layout,
            Rect(0, 1500, 2000, 3500),
            rules=RULES,
            options=EngineOptions(mode="multiproc", jobs=2),
        )
        for result in report.results:
            assert result.stats.get("mp_jobs") == 2
            # Plan compilation and eager rule submission happen once, before
            # any rule is timed — a cumulative snapshot would repeat them in
            # every rule's stats.
            assert result.stats.get("mp_plan_compiles", 0) == 0
            assert result.stats.get("mp_rule_tasks", 0) == 0

    def test_stats_delta_helper(self):
        from repro.core.incremental import stats_delta

        before = {"counter": 5, "mp_jobs": 4}
        after = {"counter": 9, "mp_jobs": 4, "fresh": 2}
        assert stats_delta(before, after) == {
            "counter": 4,
            "mp_jobs": 4,
            "fresh": 2,
        }
