"""Engine re-entrancy: concurrent checks through one engine are invisible.

The tentpole property of the concurrent-serving PR: two threads driving
*different* decks and layouts through ONE Engine (one shared warm worker
pool, one pack store, one cost model) must each produce a report
byte-identical to a solo run of the same check, with no cross-contaminated
stats — and the multiprocess recovery ladder must keep working while the
pool is shared.
"""

import threading

import pytest

from repro.core import Engine, EngineOptions
from repro.core import costmodel, multiproc, workerpool
from repro.core.engine import CheckContext
from repro.core.rules import layer
from repro.util import faults

from .test_multiproc import random_via_layout


@pytest.fixture(autouse=True)
def _isolate(monkeypatch):
    """Fresh pool registry, probe cache, and cost models around every test."""
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    workerpool.shutdown_pools()
    costmodel.reset_models()
    multiproc._PROBE_CACHE.clear()
    faults.clear()
    yield
    workerpool.shutdown_pools()
    costmodel.reset_models()
    multiproc._PROBE_CACHE.clear()
    faults.clear()


def metal_deck():
    return [
        layer(1).spacing().greater_than(7).named("S"),
        layer(1).width().greater_than(8).named("W"),
    ]


def via_deck():
    return [
        layer(2).enclosure(layer(1)).greater_than(3).named("ENC"),
        layer(2).area().greater_than(10).named("A"),
    ]


@pytest.fixture(scope="module")
def metal_layout():
    return random_via_layout(881, instances=20)


@pytest.fixture(scope="module")
def via_layout():
    return random_via_layout(882, instances=20)


@pytest.fixture(scope="module")
def metal_ref(metal_layout):
    return Engine(mode="sequential").check(metal_layout, rules=metal_deck())


@pytest.fixture(scope="module")
def via_ref(via_layout):
    return Engine(mode="sequential").check(via_layout, rules=via_deck())


def _concurrent_checks(engine, workloads, timeout=180):
    """Run every (layout, rules) pair through ``engine`` simultaneously.

    A barrier makes the overlap real — no thread enters the engine until
    all of them are poised to — and any worker exception fails the test
    rather than vanishing into a thread.
    """
    barrier = threading.Barrier(len(workloads))
    reports = [None] * len(workloads)
    errors = []

    def worker(index, layout, rules):
        try:
            barrier.wait(30)
            reports[index] = engine.check(layout, rules=rules)
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(i, layout, rules))
        for i, (layout, rules) in enumerate(workloads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
    if errors:
        raise errors[0]
    assert all(t.is_alive() is False for t in threads), "check did not finish"
    assert all(report is not None for report in reports)
    return reports


def warm_options(**kw):
    kw.setdefault("mode", "multiproc")
    kw.setdefault("jobs", 2)
    kw.setdefault("warm_pool", True)
    return EngineOptions(**kw)


class TestSequentialReentrancy:
    def test_two_threads_one_engine_match_solo_runs(
        self, metal_layout, via_layout, metal_ref, via_ref
    ):
        with Engine(mode="sequential") as engine:
            got_metal, got_via = _concurrent_checks(
                engine, [(metal_layout, metal_deck()), (via_layout, via_deck())]
            )
        assert got_metal.to_csv() == metal_ref.to_csv()
        assert got_via.to_csv() == via_ref.to_csv()

    def test_contexts_keep_profiles_separate(self, metal_layout, via_layout):
        # The per-check profile map lives on the CheckContext, not the
        # engine: concurrent checks of different decks each report exactly
        # their own rules' profiles, never a blend.
        with Engine(mode="sequential") as engine:
            got_metal, got_via = _concurrent_checks(
                engine, [(metal_layout, metal_deck()), (via_layout, via_deck())]
            )
        assert [r.rule.name for r in got_metal.results] == ["S", "W"]
        assert [r.rule.name for r in got_via.results] == ["ENC", "A"]
        for report in (got_metal, got_via):
            for result in report.results:
                assert result.profile is not None

    def test_check_context_shape(self):
        # The context is the re-entrancy unit: everything a check mutates.
        fields = {f.name for f in CheckContext.__dataclass_fields__.values()}
        assert {"plan", "backend", "profiles", "results_by_name"} <= fields


class TestMultiprocReentrancy:
    def test_shared_warm_pool_byte_identical_to_solo(
        self, tmp_path, metal_layout, via_layout, metal_ref, via_ref
    ):
        # One engine, one warm pool, one pack store, one cost model — two
        # threads checking different layouts/decks concurrently must match
        # their solo sequential references byte for byte.
        options = warm_options(cache_dir=str(tmp_path))
        with Engine(options=options) as engine:
            got_metal, got_via = _concurrent_checks(
                engine, [(metal_layout, metal_deck()), (via_layout, via_deck())]
            )
            pool = workerpool.get_pool(2)
            assert pool.worker_pids(), "both checks must share the warm pool"
        assert got_metal.to_csv() == metal_ref.to_csv()
        assert got_via.to_csv() == via_ref.to_csv()

    def test_stats_are_not_cross_contaminated(self, metal_layout, via_layout):
        # cost_model=False keeps every shard on the pool (no inline
        # routing), so each report's mp stats describe exactly its own
        # check: plan compiles count each deck once, and nothing from the
        # other check's shards leaks in.
        options = warm_options(cost_model=False)
        with Engine(options=options) as engine:
            got_metal, got_via = _concurrent_checks(
                engine, [(metal_layout, metal_deck()), (via_layout, via_deck())]
            )
        metal_stats = got_metal.results[-1].stats
        via_stats = got_via.results[-1].stats
        for stats in (metal_stats, via_stats):
            assert stats["mp_plan_compiles"] == 1
            assert stats["mp_degraded"] == 0
            assert stats["mp_rule_tasks"] + stats["mp_shard_tasks"] > 0

    def test_recovery_ladder_with_a_shared_pool(
        self, monkeypatch, metal_layout, via_layout, metal_ref, via_ref
    ):
        # REPRO_FAULTS arms one worker_raise across the whole process;
        # whichever concurrent check's submission draws it must recover via
        # a retry on the shared pool, and BOTH checks must still match
        # their references with no in-process degradation.
        monkeypatch.setenv(faults.FAULTS_ENV, "worker_raise:times=1")
        with Engine(options=warm_options()) as engine:
            got_metal, got_via = _concurrent_checks(
                engine, [(metal_layout, metal_deck()), (via_layout, via_deck())]
            )
        assert got_metal.to_csv() == metal_ref.to_csv()
        assert got_via.to_csv() == via_ref.to_csv()
        metal_stats = got_metal.results[-1].stats
        via_stats = got_via.results[-1].stats
        assert metal_stats["mp_retries"] + via_stats["mp_retries"] >= 1
        assert metal_stats["mp_degraded"] == 0
        assert via_stats["mp_degraded"] == 0
