"""Option-matrix coverage: every engine configuration yields the same
violations on a dirty design (configuration changes performance, never
results)."""

import pytest

from repro.core import Engine, EngineOptions
from repro.workloads import InjectionPlan, asap7, build_design, inject_violations


@pytest.fixture(scope="module")
def dirty():
    layout = build_design("uart")
    inject_violations(
        layout,
        InjectionPlan(spacing=3, width=2, area=2, enclosure=2),
        layer=asap7.M2,
        via_layer=asap7.V2,
        metal_layer=asap7.M2,
        seed=99,
    )
    deck = [
        asap7.spacing_rule(asap7.M2),
        asap7.width_rule(asap7.M2),
        asap7.area_rule(asap7.M2),
        asap7.enclosure_rule(asap7.V2, asap7.M2),
    ]
    reference = Engine(mode="sequential").check(layout, rules=deck)
    return layout, deck, reference


CONFIGS = [
    EngineOptions(mode="sequential", use_rows=True),
    EngineOptions(mode="sequential", use_rows=False),
    EngineOptions(mode="parallel", use_rows=True),
    EngineOptions(mode="parallel", use_rows=False),
    EngineOptions(mode="parallel", num_streams=1),
    EngineOptions(mode="parallel", num_streams=4),
    EngineOptions(mode="parallel", brute_force_threshold=0),
    EngineOptions(mode="parallel", brute_force_threshold=10 ** 9),
]


@pytest.mark.parametrize(
    "options",
    CONFIGS,
    ids=[
        "seq-rows",
        "seq-norows",
        "par-rows",
        "par-norows",
        "par-1stream",
        "par-4stream",
        "par-sweep-only",
        "par-brute-only",
    ],
)
def test_configuration_invariance(dirty, options):
    layout, deck, reference = dirty
    report = Engine(options=options).check(layout, rules=deck)
    for got, want in zip(report.results, reference.results):
        assert got.violation_set() == want.violation_set(), got.rule.name


def test_stats_present_in_results(dirty):
    layout, deck, _ = dirty
    report = Engine(mode="parallel").check(layout, rules=deck)
    spacing_stats = report.result("M2.S.1").stats
    assert "kernels_bruteforce" in spacing_stats or "kernels_sweepline" in spacing_stats


def test_reports_deterministic(dirty):
    layout, deck, _ = dirty
    a = Engine(mode="parallel").check(layout, rules=deck)
    b = Engine(mode="parallel").check(layout, rules=deck)
    assert a.to_csv() == b.to_csv()
