"""Engine robustness: absent layers, empty cells, degenerate decks."""

import pytest

from repro.core import Engine
from repro.core.rules import layer, polygons
from repro.geometry import Polygon
from repro.layout import Layout


def empty_layout():
    layout = Layout("empty")
    layout.new_cell("top")
    layout.set_top("top")
    return layout


def one_shape():
    layout = Layout("one")
    top = layout.new_cell("top")
    top.add_polygon(1, Polygon.from_rect_coords(0, 0, 100, 100))
    layout.set_top("top")
    return layout


ALL_RULES = [
    layer(1).width().greater_than(10),
    layer(1).spacing().greater_than(10),
    layer(1).area().greater_than(10),
    layer(1).corner_spacing().greater_than(10),
    layer(1).same_mask_spacing().greater_than(10),
    layer(2).enclosure(layer(1)).greater_than(3),
    layer(2).overlap(layer(1)).greater_than(10),
    polygons().is_rectilinear(),
    layer(1).polygons().ensures(lambda p: True),
]


@pytest.mark.parametrize("mode", ["sequential", "parallel"])
class TestDegenerateLayouts:
    def test_empty_layout_all_rules_pass(self, mode):
        report = Engine(mode=mode).check(empty_layout(), rules=ALL_RULES)
        assert report.passed

    def test_single_shape_layout(self, mode):
        report = Engine(mode=mode).check(one_shape(), rules=ALL_RULES[:5] + ALL_RULES[7:])
        assert report.passed

    def test_rule_on_absent_layer(self, mode):
        report = Engine(mode=mode).check(
            one_shape(), rules=[layer(99).spacing().greater_than(10)]
        )
        assert report.passed

    def test_enclosure_with_no_vias(self, mode):
        report = Engine(mode=mode).check(
            one_shape(), rules=[layer(99).enclosure(layer(1)).greater_than(3)]
        )
        assert report.passed

    def test_enclosure_with_no_metal_flags_all(self, mode):
        report = Engine(mode=mode).check(
            one_shape(), rules=[layer(1).enclosure(layer(99)).greater_than(3)]
        )
        assert report.results[0].num_violations == 1
