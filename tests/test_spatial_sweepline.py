import random

import pytest

from repro.geometry import EMPTY_RECT, Rect
from repro.spatial import (
    brute_force_pairs,
    iter_bipartite_overlaps,
    iter_overlapping_pairs,
    report_overlapping_pairs,
    sweep,
)


def random_rects(rng, n, extent=300, max_size=40):
    out = []
    for _ in range(n):
        x, y = rng.randint(0, extent), rng.randint(0, extent)
        out.append(Rect(x, y, x + rng.randint(0, max_size), y + rng.randint(0, max_size)))
    return out


class TestOverlappingPairs:
    def test_simple_overlap(self):
        rects = [Rect(0, 0, 10, 10), Rect(5, 5, 15, 15), Rect(100, 100, 110, 110)]
        assert report_overlapping_pairs(rects) == [(0, 1)]

    def test_touching_rects_reported(self):
        # Closed-overlap semantics: the engine inflates by rule distance
        # first, so boundary contact must be reported.
        assert report_overlapping_pairs([Rect(0, 0, 5, 5), Rect(5, 0, 9, 5)]) == [(0, 1)]

    def test_vertical_touch_reported(self):
        assert report_overlapping_pairs([Rect(0, 0, 5, 5), Rect(0, 5, 5, 9)]) == [(0, 1)]

    def test_corner_touch_reported(self):
        assert report_overlapping_pairs([Rect(0, 0, 5, 5), Rect(5, 5, 9, 9)]) == [(0, 1)]

    def test_each_pair_once(self):
        rects = [Rect(0, 0, 10, 10)] * 3
        pairs = report_overlapping_pairs(rects)
        assert sorted(pairs) == [(0, 1), (0, 2), (1, 2)]

    def test_empty_rects_skipped(self):
        rects = [Rect(0, 0, 10, 10), EMPTY_RECT, Rect(5, 5, 15, 15)]
        assert report_overlapping_pairs(rects) == [(0, 2)]

    def test_no_rects(self):
        assert report_overlapping_pairs([]) == []

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        rects = random_rects(rng, 150)
        assert sorted(iter_overlapping_pairs(rects)) == sorted(brute_force_pairs(rects))


class TestBipartite:
    def test_cross_pairs_only(self):
        left = [Rect(0, 0, 10, 10), Rect(100, 0, 110, 10)]
        right = [Rect(5, 5, 15, 15), Rect(6, 6, 7, 7)]
        pairs = sorted(iter_bipartite_overlaps(left, right))
        assert pairs == [(0, 0), (0, 1)]

    def test_within_side_not_reported(self):
        left = [Rect(0, 0, 10, 10), Rect(5, 5, 15, 15)]
        right = [Rect(1000, 1000, 1001, 1001)]
        assert list(iter_bipartite_overlaps(left, right)) == []

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute_force(self, seed):
        rng = random.Random(100 + seed)
        left = random_rects(rng, 80)
        right = random_rects(rng, 70)
        expected = sorted(
            (i, j)
            for i, a in enumerate(left)
            for j, b in enumerate(right)
            if a.overlaps(b)
        )
        assert sorted(iter_bipartite_overlaps(left, right)) == expected


class TestSweepCallback:
    def test_on_pair_invoked(self):
        rects = [Rect(0, 0, 10, 10), Rect(5, 5, 15, 15)]
        seen = []
        count = sweep(rects, lambda i, j: seen.append((i, j)))
        assert count == 1 and seen == [(0, 1)]

    def test_prune_suppresses(self):
        rects = [Rect(0, 0, 10, 10), Rect(5, 5, 15, 15)]
        count = sweep(rects, lambda i, j: None, prune=lambda i, j: True)
        assert count == 0
