from repro.geometry import Polygon, Transform
from repro.hierarchy import LayerView
from repro.layout import CellReference, Layout


def build_layout() -> Layout:
    layout = Layout("lv")
    m1_cell = layout.new_cell("m1_cell")
    m1_cell.add_polygon(1, Polygon.from_rect_coords(0, 0, 10, 10))
    m2_cell = layout.new_cell("m2_cell")
    m2_cell.add_polygon(2, Polygon.from_rect_coords(0, 0, 10, 10))
    both = layout.new_cell("both")
    both.add_polygon(1, Polygon.from_rect_coords(0, 0, 5, 5))
    both.add_polygon(2, Polygon.from_rect_coords(10, 0, 15, 5))
    top = layout.new_cell("top")
    for i, name in enumerate(["m1_cell", "m2_cell", "both"]):
        top.add_reference(CellReference(name, Transform(dx=100 * i)))
    layout.set_top("top")
    return layout


class TestLayerTrees:
    def test_per_layer_membership(self):
        view = LayerView(build_layout())
        assert set(view.layer_tree(1)) == {"m1_cell", "both", "top"}
        assert set(view.layer_tree(2)) == {"m2_cell", "both", "top"}

    def test_children_filtered_per_layer(self):
        view = LayerView(build_layout())
        top_node = view.layer_tree(1)["top"]
        child_names = {name for _, name in top_node.children}
        assert child_names == {"m1_cell", "both"}

    def test_absent_layer_empty(self):
        view = LayerView(build_layout())
        assert view.layer_tree(9) == {}

    def test_tree_size(self):
        view = LayerView(build_layout())
        assert view.tree_size(1) == 3

    def test_duplication_factor_bounded_by_layer_count(self):
        view = LayerView(build_layout())
        assert 1.0 <= view.duplication_factor() <= 2.0  # L = 2 layers


class TestInvertedIndex:
    def test_leaf_elements_list_definitions(self):
        view = LayerView(build_layout())
        elements = view.leaf_elements(1)
        cells = sorted(cell for cell, _ in elements)
        assert cells == ["both", "m1_cell"]

    def test_element_count(self):
        view = LayerView(build_layout())
        assert view.element_count(2) == 2
        assert view.element_count(9) == 0

    def test_layers_listing(self):
        assert LayerView(build_layout()).layers() == [1, 2]
