"""Additional coverage: statistics, flatten generators, and layer views on
the synthesized benchmark designs (integration-grade invariants)."""

from repro.hierarchy import HierarchyTree, LayerView
from repro.layout import compute_stats, count_flat_polygons, flatten, iter_flat_polygons
from repro.workloads import asap7, build_design


class TestDesignStatistics:
    def test_counts_consistent_with_flatten(self, ibex_layout):
        counted = count_flat_polygons(ibex_layout)
        materialized = {
            layer: len(polys) for layer, polys in flatten(ibex_layout).items()
        }
        assert counted == materialized

    def test_iter_flat_is_lazy_and_complete(self, ibex_layout):
        total = sum(1 for _ in iter_flat_polygons(ibex_layout))
        assert total == compute_stats(ibex_layout).num_flat_polygons

    def test_reuse_factor_above_one(self, ibex_layout):
        stats = compute_stats(ibex_layout)
        assert stats.reuse_factor > 1.5  # std cells are heavily reused

    def test_all_metal_layers_populated(self, ibex_layout):
        counts = count_flat_polygons(ibex_layout)
        for metal in asap7.METAL_LAYERS:
            assert counts.get(metal, 0) > 0
        for via in asap7.VIA_LAYERS:
            assert counts.get(via, 0) > 0


class TestHierarchyOnDesigns:
    def test_layer_mbrs_cover_flat_geometry(self, ibex_layout):
        tree = HierarchyTree(ibex_layout)
        flat = flatten(ibex_layout)
        for layer, polys in flat.items():
            top_mbr = tree.top_mbr(layer)
            for polygon in polys:
                assert top_mbr.contains_rect(polygon.mbr), layer

    def test_layer_view_duplication_bounded(self, ibex_layout):
        view = LayerView(ibex_layout)
        assert view.duplication_factor() <= len(ibex_layout.layers())

    def test_inverted_index_counts_definitions(self, ibex_layout):
        view = LayerView(ibex_layout)
        local_m1 = sum(
            len(cell.polygons(asap7.M1)) for cell in ibex_layout.cells.values()
        )
        assert view.element_count(asap7.M1) == local_m1

    def test_top_level_items_cover_m2(self, ibex_layout):
        tree = HierarchyTree(ibex_layout)
        # M2 lives only at top level (router wires), so items == polygons.
        items = tree.top_level_items(asap7.M2)
        assert items == []  # wires are local polygons of top, not child refs
        local = ibex_layout.cell("top").polygons(asap7.M2)
        assert len(local) == count_flat_polygons(ibex_layout)[asap7.M2]


class TestScaleConsistency:
    def test_paper_scale_grows_every_layer(self):
        ci = count_flat_polygons(build_design("uart", "ci"))
        paper = count_flat_polygons(build_design("uart", "paper"))
        for layer, count in ci.items():
            assert paper.get(layer, 0) > count, layer
